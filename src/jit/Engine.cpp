//===- jit/Engine.cpp - Compilation driving and deoptimization ------------===//

#include "jit/Engine.h"

#include "lir/Codegen.h"
#include "mir/MIRBuilder.h"
#include "mir/Verifier.h"
#include "support/Timer.h"
#include "telemetry/Telemetry.h"
#include "vm/Interpreter.h"

using namespace jitvs;

const char *jitvs::despecializeCauseName(DespecializeCause C) {
  switch (C) {
  case DespecializeCause::None:
    return "none";
  case DespecializeCause::DifferentArgs:
    return "different-args";
  case DespecializeCause::OsrRevalidation:
    return "osr-revalidation";
  }
  return "invalid";
}

namespace {

/// Records a one-line cache event ([cache] hit/despecialize/discard).
void recordCacheEvent(TelemetryEventKind Kind, const FunctionInfo *Info,
                      const char *Detail = nullptr) {
  if (!telemetryEnabled(TelCache))
    return;
  TelemetryEvent E;
  E.Kind = Kind;
  E.setFunc(Info->Name);
  if (Detail)
    E.setDetail(Detail);
  telemetry().record(E);
}

} // namespace

/// Roots everything the engine keeps alive across GC: cached argument
/// sets, cached OSR slot values, and the constant pools of all compiled
/// binaries. A compiling MIR graph is rooted separately via GraphRoots.
class Engine::EngineRoots final : public RootSource {
public:
  explicit EngineRoots(Engine &E) : E(E) { E.RT.heap().addRootSource(this); }
  ~EngineRoots() override { E.RT.heap().removeRootSource(this); }

  void markRoots(GCMarker &Marker) override {
    for (auto &[Info, FS] : E.States) {
      for (const Value &V : FS.CachedArgs)
        Marker.mark(V);
      for (const Value &V : FS.CachedOsrSlots)
        Marker.mark(V);
      for (const auto &[Args, Code] : FS.ExtraSpecializations)
        for (const Value &V : Args)
          Marker.mark(V);
    }
    for (const auto &Code : E.AllCode)
      for (const Value &V : Code->ConstPool)
        Marker.mark(V);
  }

private:
  Engine &E;
};

namespace {

/// Temporarily roots a MIR graph's constants while passes run (constant
/// folding may allocate strings, which can trigger a collection).
class GraphRoots final : public RootSource {
public:
  GraphRoots(Heap &H, MIRGraph &Graph) : H(H), Graph(Graph) {
    H.addRootSource(this);
  }
  ~GraphRoots() override { H.removeRootSource(this); }

  void markRoots(GCMarker &Marker) override {
    Graph.forEachConstant([&Marker](const Value &V) { Marker.mark(V); });
  }

private:
  Heap &H;
  MIRGraph &Graph;
};

} // namespace

Engine::Engine(Runtime &RT, const OptConfig &Config)
    : RT(RT), Config(Config), Exec(RT) {
  Roots = std::make_unique<EngineRoots>(*this);
  RT.setHooks(this);
}

Engine::~Engine() {
  if (RT.hooks() == this)
    RT.setHooks(nullptr);
}

Engine::FuncState &Engine::state(FunctionInfo *Info) {
  return States[Info];
}

bool Engine::argsMatch(const std::vector<Value> &Cached, const Value *Args,
                       size_t NumArgs) const {
  if (Cached.size() != NumArgs)
    return false;
  for (size_t I = 0; I != NumArgs; ++I)
    if (!Cached[I].sameSpecializationValue(Args[I]))
      return false;
  return true;
}

std::shared_ptr<NativeCode>
Engine::compile(FunctionInfo *Info, const std::vector<Value> *SpecArgs,
                const uint32_t *OsrPc, const std::vector<Value> *OsrSlots) {
  Timer T;

  if (telemetryEnabled(TelCompile)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::CompileStart;
    E.setFunc(Info->Name);
    E.setDetail(Config.describe());
    E.A = SpecArgs != nullptr;
    E.B = OsrPc != nullptr;
    telemetry().record(E);
  }

  BuildOptions Opts;
  if (SpecArgs)
    Opts.SpecializedArgs = *SpecArgs;
  if (OsrPc) {
    Opts.OsrPc = *OsrPc;
    if (OsrSlots)
      Opts.OsrSlotValues = *OsrSlots;
  }

  std::unique_ptr<MIRGraph> Graph = buildMIR(Info, Opts);
  GraphRoots RootGuard(RT.heap(), *Graph);

  // §3.7: closures passed as parameters become constant callees under
  // specialization; inline them immediately, without guards.
  if (Config.ParameterSpecialization)
    runClosureInlining(*Graph, RT, Config);

  runOptimizationPipeline(*Graph, RT, Config);

#ifndef NDEBUG
  std::string Violation = verifyGraph(*Graph);
  if (!Violation.empty()) {
    std::fprintf(stderr, "MIR verification failed for %s: %s\n",
                 Info->Name.c_str(), Violation.c_str());
    reportFatal("MIR verifier failure");
  }
#endif

  std::shared_ptr<NativeCode> Code = generateCode(*Graph);
  AllCode.push_back(Code);

  double Seconds = T.seconds();
  if (telemetryEnabled(TelCompile)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::CompileEnd;
    E.setFunc(Info->Name);
    E.setDetail(Config.describe());
    E.DurNs = static_cast<uint64_t>(Seconds * 1e9);
    E.A = SpecArgs != nullptr;
    E.B = OsrPc != nullptr;
    E.C = Code->sizeInInstructions();
    telemetry().record(E);
  }
  Stats.CompileSeconds += Seconds;
  ++Stats.Compilations;
  if (SpecArgs)
    ++Stats.SpecializedCompiles;
  else
    ++Stats.GenericCompiles;

  FuncState &FS = state(Info);
  ++FS.Compiles;
  if (FS.Compiles > 1)
    ++Stats.Recompilations;
  FS.MinCodeSize = std::min(FS.MinCodeSize, Code->sizeInInstructions());
  return Code;
}

Value Engine::execute(FuncState &FS, FunctionInfo *Info, const Value &ThisV,
                      const Value *Args, size_t NumArgs, bool AtOsr,
                      const std::vector<Value> *OsrSlots, Environment *Env,
                      Environment *ClosureEnv,
                      std::shared_ptr<NativeCode> CodeOverride) {
  // Keep the binary alive: nested calls may despecialize this function
  // and discard FS.Code while we are still executing it.
  std::shared_ptr<NativeCode> Code =
      CodeOverride ? std::move(CodeOverride) : FS.Code;
  ExecResult R = Exec.run(*Code, ThisV, Args, NumArgs, AtOsr,
                          OsrSlots ? OsrSlots->data() : nullptr,
                          OsrSlots ? OsrSlots->size() : 0, Env, ClosureEnv);
  if (R.K == ExecResult::Ok)
    return R.Result;
  if (R.K == ExecResult::Error)
    return Value::undefined();

  // --- Bailout: deoptimize to the interpreter. ---
  ++Stats.Bailouts;
  ++Stats.BailoutsByReason[static_cast<size_t>(R.BailReason)];
  ++FS.Bailouts;
  ++FS.TotalBailouts;
  const Snapshot &S = Code->Snapshots[R.SnapshotId];
  if (telemetryEnabled(TelBailout)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::Bailout;
    E.Reason = R.BailReason;
    E.setFunc(Info->Name);
    E.setDetail(nopName(R.BailOp));
    E.A = R.BailPc;
    E.B = S.PC;
    telemetry().record(E);
  }
#ifdef JITVS_DEBUG_BAIL
  fprintf(stderr, "BAIL fn=%s pc=%u op=%s entries=%zu frameslots=%u\n",
          Info->Name.c_str(), S.PC, nopName(R.BailOp), S.Entries.size(),
          S.NumFrameSlots);
#endif

  // Feed the failure back so the next compile avoids this guard.
  switch (R.BailOp) {
  case NOp::AddI:
  case NOp::SubI:
  case NOp::MulI:
  case NOp::ModI:
  case NOp::NegI:
    Info->Feedback.at(S.PC).SawIntOverflow = true;
    break;
  case NOp::BoundsCheck:
    Info->Feedback.at(S.PC).SawOutOfBounds = true;
    break;
  default:
    break; // Tag guards: the interpreter re-records operand types.
  }

  // Reconstruct the interpreter frame from the snapshot.
  InterpFrame Frame(RT, Info);
  Frame.PC = S.PC;
  Frame.ThisV = ThisV;
  Frame.ClosureEnv = ClosureEnv;
  Frame.OrigArgs.assign(Args, Args + NumArgs);
  // The environment in effect is whatever the native frame was using
  // (adopted at OSR entry or created by the native prologue); reuse it so
  // mutations performed before the guard failure are preserved. No
  // allocation may happen between here and populating the frame: the
  // snapshot values in RegsAtBail are not GC roots.
  Frame.Env = R.EnvAtBail;

  auto DecodeEntry = [&](const SnapshotEntry &E) {
    if (E.IsConst)
      return Code->ConstPool[E.Index];
    return R.RegsAtBail[E.Index];
  };
  size_t NumEntries = S.Entries.size();
  for (size_t I = 0; I != NumEntries; ++I) {
    Value V = DecodeEntry(S.Entries[I]);
    if (I < S.NumFrameSlots) {
      if (I < Frame.Slots.size())
        Frame.Slots[I] = V;
    } else {
      Frame.Stack.push_back(V);
    }
  }

  // Repeated bailouts: the speculation was wrong. Discard the binary
  // BEFORE resuming — the resumed interpreter may immediately re-trigger
  // OSR, and re-entering the same failing code would nest bail/resume
  // cycles on the C++ stack for the rest of the loop. Discarding first
  // bounds the nesting: the next compile uses the refreshed feedback.
  if (FS.Bailouts >= BailoutLimit && FS.Code == Code) {
    recordCacheEvent(TelemetryEventKind::Discard, Info, "bailout-limit");
    FS.Code.reset();
    FS.Bailouts = 0;
    FS.Specialized = false;
  }

  return RT.resumeFrame(Frame);
}

bool Engine::onCall(JSFunction *Callee, const Value &ThisV,
                    const Value *Args, size_t NumArgs, Value &Result) {
  FunctionInfo *Info = Callee->info();
  FuncState &FS = state(Info);

  if (FS.Code) {
    if (FS.Specialized) {
      if (argsMatch(FS.CachedArgs, Args, NumArgs)) {
        ++Stats.CacheHits;
        ++FS.CacheHits;
        ++Stats.NativeCalls;
        recordCacheEvent(TelemetryEventKind::CacheHit, Info);
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment());
        return true;
      }
      // Cache depth > 1 (the paper's future-work heuristic): other
      // cached argument sets, then free slots.
      for (auto &[CachedArgs, CachedCode] : FS.ExtraSpecializations) {
        if (argsMatch(CachedArgs, Args, NumArgs)) {
          ++Stats.CacheHits;
          ++FS.CacheHits;
          ++Stats.NativeCalls;
          recordCacheEvent(TelemetryEventKind::CacheHit, Info);
          Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                           nullptr, nullptr, Callee->environment(),
                           CachedCode);
          return true;
        }
      }
      if (FS.ExtraSpecializations.size() + 1 < CacheDepth) {
        std::vector<Value> ArgVec(Args, Args + NumArgs);
        std::shared_ptr<NativeCode> NewCode =
            compile(Info, &ArgVec, nullptr, nullptr);
        FS.ExtraSpecializations.emplace_back(std::move(ArgVec), NewCode);
        ++Stats.NativeCalls;
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment(), NewCode);
        return true;
      }
      // Different arguments: discard, recompile generic, never try again.
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      FS.Cause = DespecializeCause::DifferentArgs;
      recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                       "different-args");
      FS.Code.reset();
      FS.Specialized = false;
      FS.NeverSpecialize = true;
      FS.CachedArgs.clear();
      FS.ExtraSpecializations.clear();
      FS.Code = compile(Info, nullptr, nullptr, nullptr);
      ++Stats.NativeCalls;
      Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                       nullptr, nullptr, Callee->environment());
      return true;
    }
    ++Stats.NativeCalls;
    Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                     nullptr, nullptr, Callee->environment());
    return true;
  }

  if (Info->CallCount < CallThreshold) {
    ++Stats.InterpretedCalls;
    return false;
  }

  bool Specialize =
      Config.ParameterSpecialization && !FS.NeverSpecialize;
  if (Specialize) {
    std::vector<Value> ArgVec(Args, Args + NumArgs);
    FS.Code = compile(Info, &ArgVec, nullptr, nullptr);
    FS.Specialized = true;
    FS.EverSpecialized = true;
    FS.CachedArgs = std::move(ArgVec);
  } else {
    FS.Code = compile(Info, nullptr, nullptr, nullptr);
  }
  ++Stats.NativeCalls;
  Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false, nullptr,
                   nullptr, Callee->environment());
  return true;
}

bool Engine::onLoopHead(InterpFrame &Frame, uint32_t PC, Value &Result) {
  FunctionInfo *Info = Frame.Info;
  if (Info->BackEdgeCount < LoopThreshold)
    return false;
  FuncState &FS = state(Info);

  bool Specialize =
      Config.ParameterSpecialization && !FS.NeverSpecialize;

  if (FS.Code && FS.Code->OsrPc == PC) {
    // Existing binary has an OSR entry here; specialized code baked the
    // OSR frame values in, so revalidate them.
    if (FS.Specialized &&
        !argsMatch(FS.CachedOsrSlots, Frame.Slots.data(),
                   Frame.Slots.size())) {
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      FS.Cause = DespecializeCause::OsrRevalidation;
      recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                       "osr-revalidation");
      FS.Code.reset();
      FS.Specialized = false;
      FS.NeverSpecialize = true;
      FS.CachedArgs.clear();
      FS.CachedOsrSlots.clear();
      FS.Code = compile(Info, nullptr, &PC, nullptr);
    }
  } else {
    // Compile (or recompile) with an OSR entry at this loop head.
    if (FS.Specialized && FS.Code &&
        !argsMatch(FS.CachedArgs, Frame.OrigArgs.data(),
                   Frame.OrigArgs.size())) {
      // The running frame's arguments differ from the cached
      // specialization; fall back to generic for this function.
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      FS.Cause = DespecializeCause::DifferentArgs;
      recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                       "different-args");
      FS.Specialized = false;
      FS.NeverSpecialize = true;
      FS.CachedArgs.clear();
      FS.CachedOsrSlots.clear();
      Specialize = false;
    }
    // Avoid compile storms when several hot loops alternate in one
    // function: after a few rebuilds, leave the loop to the interpreter.
    if (FS.Code && FS.Compiles > 8)
      return false;
    FS.Code.reset();
    if (Specialize) {
      std::vector<Value> ArgVec = Frame.OrigArgs;
      std::vector<Value> SlotVec = Frame.Slots;
      FS.Code = compile(Info, &ArgVec, &PC, &SlotVec);
      FS.Specialized = true;
      FS.EverSpecialized = true;
      FS.CachedArgs = std::move(ArgVec);
      FS.CachedOsrSlots = std::move(SlotVec);
    } else {
      FS.Code = compile(Info, nullptr, &PC, nullptr);
    }
  }

  if (!FS.Code || FS.Code->OsrOffset == ~0u)
    return false; // No usable OSR entry (e.g. unreachable loop head).

  ++Stats.OsrEntries;
  if (telemetryEnabled(TelOsr)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::OsrEntry;
    E.setFunc(Info->Name);
    E.A = PC;
    telemetry().record(E);
  }
  std::vector<Value> OsrSlots = Frame.Slots;
  Result = execute(FS, Info, Frame.ThisV, Frame.OrigArgs.data(),
                   Frame.OrigArgs.size(), /*AtOsr=*/true, &OsrSlots,
                   Frame.Env, Frame.ClosureEnv);
  return true;
}

std::vector<Engine::FunctionReport> Engine::functionReports() const {
  std::vector<FunctionReport> Out;
  for (const auto &[Info, FS] : States) {
    FunctionReport R;
    R.Name = Info->Name;
    R.WasSpecialized = FS.EverSpecialized;
    R.Despecialized = FS.EverDespecialized;
    R.Cause = FS.Cause;
    R.Compiles = FS.Compiles;
    R.Bailouts = FS.TotalBailouts;
    R.CacheHits = FS.CacheHits;
    R.MinCodeSize = FS.MinCodeSize;
    Out.push_back(std::move(R));
  }
  return Out;
}

NativeCode *Engine::compileNow(FunctionInfo *Info,
                               const std::vector<Value> *Args) {
  FuncState &FS = state(Info);
  FS.Code = compile(Info, Args, nullptr, nullptr);
  FS.Specialized = Args != nullptr;
  if (Args)
    FS.CachedArgs = *Args;
  return FS.Code.get();
}
