//===- jit/Engine.cpp - Compilation driving and deoptimization ------------===//

#include "jit/Engine.h"

#include "lir/Codegen.h"
#include "mir/MIRBuilder.h"
#include "native/Fusion.h"
#include "mir/Verifier.h"
#include "profiling/CallProfiler.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"
#include "telemetry/Telemetry.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

using namespace jitvs;

const char *jitvs::despecializeCauseName(DespecializeCause C) {
  switch (C) {
  case DespecializeCause::None:
    return "none";
  case DespecializeCause::DifferentArgs:
    return "different-args";
  case DespecializeCause::OsrRevalidation:
    return "osr-revalidation";
  case DespecializeCause::ValueMismatch:
    return "value-mismatch";
  case DespecializeCause::TypeMismatch:
    return "type-mismatch";
  }
  return "invalid";
}

const char *jitvs::tierPolicyName(TierPolicy P) {
  switch (P) {
  case TierPolicy::Paper:
    return "paper";
  case TierPolicy::Tiered:
    return "tiered";
  }
  return "invalid";
}

namespace {

/// Records a one-line cache event ([cache] hit/despecialize/discard).
void recordCacheEvent(TelemetryEventKind Kind, const FunctionInfo *Info,
                      const char *Detail = nullptr) {
  if (!telemetryEnabled(TelCache))
    return;
  TelemetryEvent E;
  E.Kind = Kind;
  E.setFunc(Info->Name);
  if (Detail)
    E.setDetail(Detail);
  telemetry().record(E);
}

} // namespace

/// Roots everything the engine keeps alive across GC: cached argument
/// sets, cached OSR slot values, and the constant pools of all compiled
/// binaries. A compiling MIR graph is rooted separately via GraphRoots.
class Engine::EngineRoots final : public RootSource {
public:
  explicit EngineRoots(Engine &E) : E(E) { E.RT.heap().addRootSource(this); }
  ~EngineRoots() override { E.RT.heap().removeRootSource(this); }

  void markRoots(GCMarker &Marker) override {
    // Only value-tier signature entries hold live values; type-tier
    // entries record a tag alone precisely so stale objects can die.
    auto MarkSig = [&Marker](const SpecSig &Sig) {
      for (const ParamSig &P : Sig)
        if (P.Tier == ParamTier::Value)
          Marker.mark(P.V);
    };
    for (auto &[Info, FS] : E.States) {
      MarkSig(FS.Sig);
      MarkSig(FS.OsrSig);
      for (const auto &[Sig, Code] : FS.ExtraSpecializations)
        MarkSig(Sig);
    }
    for (const auto &Code : E.AllCode)
      for (const Value &V : Code->ConstPool)
        Marker.mark(V);
  }

private:
  Engine &E;
};

namespace {

/// Temporarily roots a MIR graph's constants while passes run (constant
/// folding may allocate strings, which can trigger a collection).
class GraphRoots final : public RootSource {
public:
  GraphRoots(Heap &H, MIRGraph &Graph) : H(H), Graph(Graph) {
    H.addRootSource(this);
  }
  ~GraphRoots() override { H.removeRootSource(this); }

  void markRoots(GCMarker &Marker) override {
    Graph.forEachConstant([&Marker](const Value &V) { Marker.mark(V); });
  }

private:
  Heap &H;
  MIRGraph &Graph;
};

} // namespace

Engine::Engine(Runtime &RT, const OptConfig &Config,
               const EngineKnobs &Knobs)
    : RT(RT), Config(Config), Exec(RT) {
  Roots = std::make_unique<EngineRoots>(*this);
  RT.setHooks(this);
  Policy = Knobs.Policy;
  FusionEnabled = Knobs.Fusion;
  Exec.setDispatchMode(Knobs.Dispatch);
  CallThreshold = Knobs.CallThreshold;
  LoopThreshold = Knobs.LoopThreshold;
  BailoutLimit = Knobs.BailoutLimit;
  CacheDepth = std::max(1u, Knobs.CacheDepth);
  ValueStabilityMax = Knobs.ValueStabilityMax;
}

Engine::Engine(Runtime &RT, const OptConfig &Config)
    : RT(RT), Config(Config), Exec(RT) {
  Roots = std::make_unique<EngineRoots>(*this);
  RT.setHooks(this);
  if (const char *P = std::getenv("JITVS_TIER_POLICY")) {
    if (!std::strcmp(P, "tiered"))
      Policy = TierPolicy::Tiered;
    else if (!std::strcmp(P, "paper"))
      Policy = TierPolicy::Paper;
  }
  if (const char *N = std::getenv("JITVS_TIER_VALUE_MAX"))
    if (int V = std::atoi(N); V > 0)
      ValueStabilityMax = static_cast<uint32_t>(V);
  if (const char *F = std::getenv("JITVS_FUSION"))
    FusionEnabled = std::strcmp(F, "0") != 0 && std::strcmp(F, "off") != 0;
}

Engine::~Engine() {
  if (metricsEnabled())
    publishMetrics();
  if (RT.hooks() == this)
    RT.setHooks(nullptr);
}

Engine::FuncState &Engine::state(FunctionInfo *Info) {
  return States[Info];
}

SpecSig Engine::makeSig(const std::vector<ParamTier> *Tiers,
                        const Value *Args, size_t NumArgs) {
  SpecSig Sig(NumArgs);
  for (size_t I = 0; I != NumArgs; ++I) {
    ParamTier T = !Tiers ? ParamTier::Value
                 : I < Tiers->size() ? (*Tiers)[I]
                                     : ParamTier::Value;
    Sig[I].Tier = T;
    if (T == ParamTier::Value)
      Sig[I].V = Args[I];
    else if (T == ParamTier::Type)
      Sig[I].Tag = Args[I].tag();
  }
  return Sig;
}

bool Engine::sigMatches(const SpecSig &Sig, const Value *Args,
                        size_t NumArgs) {
  if (Sig.size() != NumArgs)
    return false;
  for (size_t I = 0; I != NumArgs; ++I) {
    const ParamSig &P = Sig[I];
    switch (P.Tier) {
    case ParamTier::Value:
      if (!P.V.sameSpecializationValue(Args[I]))
        return false;
      break;
    case ParamTier::Type:
      if (P.Tag != Args[I].tag())
        return false;
      break;
    case ParamTier::Generic:
      break;
    }
  }
  return true;
}

ParamTier Engine::sigTier(const SpecSig &Sig) {
  ParamTier T = ParamTier::Generic;
  for (const ParamSig &P : Sig)
    T = std::max(T, P.Tier);
  return T;
}

std::vector<ParamTier> Engine::chooseTiers(FunctionInfo *Info,
                                           size_t NumArgs) {
  std::vector<ParamTier> Tiers(NumArgs, ParamTier::Value);
  if (Policy != TierPolicy::Tiered || !Profiler)
    return Tiers;
  std::vector<ParamStability> Stab = Profiler->paramStability(Info);
  for (size_t I = 0; I != NumArgs && I != Stab.size(); ++I) {
    if (Stab[I].DistinctValues <= ValueStabilityMax)
      Tiers[I] = ParamTier::Value;
    else if (Stab[I].DistinctTags == 1)
      Tiers[I] = ParamTier::Type;
    else
      Tiers[I] = ParamTier::Generic;
  }
  return Tiers;
}

std::vector<ParamTier> Engine::demoteTiers(FunctionInfo *Info,
                                           const SpecSig &Sig,
                                           const Value *Args, size_t NumArgs,
                                           bool &SawTypeMismatch) {
  SawTypeMismatch = false;
  std::vector<ParamTier> NewTiers(NumArgs, ParamTier::Generic);
  if (Sig.size() != NumArgs) {
    // Arity changed underneath the cache: no per-parameter facts carry
    // over; treat as a whole-signature type mismatch.
    SawTypeMismatch = true;
    Stats.TierDemotionsToGeneric += Sig.size();
    return NewTiers;
  }
  auto RecordTransition = [&](size_t I, const char *Edge) {
    ++state(Info).TierTransitions;
    if (!telemetryEnabled(TelCache))
      return;
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::TierTransition;
    E.setFunc(Info->Name);
    E.setDetail(Edge);
    E.A = I;
    telemetry().record(E);
  };
  for (size_t I = 0; I != NumArgs; ++I) {
    const ParamSig &P = Sig[I];
    switch (P.Tier) {
    case ParamTier::Value:
      if (P.V.sameSpecializationValue(Args[I])) {
        NewTiers[I] = ParamTier::Value;
      } else if (P.V.tag() == Args[I].tag()) {
        // The ladder's key step: same tag, new value -> keep the type
        // fact, drop only the exact-value assumption.
        NewTiers[I] = ParamTier::Type;
        ++Stats.TierDemotionsValueToType;
        RecordTransition(I, "value->type");
      } else {
        NewTiers[I] = ParamTier::Generic;
        SawTypeMismatch = true;
        ++Stats.TierDemotionsToGeneric;
        RecordTransition(I, "value->generic");
      }
      break;
    case ParamTier::Type:
      if (P.Tag == Args[I].tag()) {
        NewTiers[I] = ParamTier::Type;
      } else {
        NewTiers[I] = ParamTier::Generic;
        SawTypeMismatch = true;
        ++Stats.TierDemotionsToGeneric;
        RecordTransition(I, "type->generic");
      }
      break;
    case ParamTier::Generic:
      NewTiers[I] = ParamTier::Generic;
      break;
    }
  }
  return NewTiers;
}

void Engine::recordCacheHit(FuncState &FS, const SpecSig &Sig,
                            const FunctionInfo *Info) {
  ++Stats.CacheHits;
  ++FS.CacheHits;
  // A binary is a "type-tier" reuse when its strongest remaining
  // assumption is a tag; anything baking at least one exact value — and
  // the degenerate zero-parameter signature, which the paper policy
  // treats as (vacuously) value-specialized — counts as a value hit.
  if (sigTier(Sig) == ParamTier::Type) {
    ++Stats.TypeTierHits;
    ++FS.TypeTierHits;
  } else {
    ++Stats.ValueTierHits;
    ++FS.ValueTierHits;
  }
  ++Stats.NativeCalls;
  recordCacheEvent(TelemetryEventKind::CacheHit, Info);
}

std::shared_ptr<NativeCode>
Engine::compile(FunctionInfo *Info, const std::vector<Value> *SpecArgs,
                const std::vector<ParamTier> *Tiers, const uint32_t *OsrPc,
                const std::vector<Value> *OsrSlots,
                const std::vector<ParamTier> *OsrTiers) {
  Timer T;
  MetricsPhaseTimer CompilePhase(Phase::Compile);

  if (telemetryEnabled(TelCompile)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::CompileStart;
    E.setFunc(Info->Name);
    E.setDetail(Config.describe());
    E.A = SpecArgs != nullptr;
    E.B = OsrPc != nullptr;
    telemetry().record(E);
  }

  BuildOptions Opts;
  if (SpecArgs) {
    Opts.SpecializedArgs = *SpecArgs;
    if (Tiers)
      Opts.ParamTiers = *Tiers;
  }
  if (OsrPc) {
    Opts.OsrPc = *OsrPc;
    if (OsrSlots)
      Opts.OsrSlotValues = *OsrSlots;
    if (OsrTiers)
      Opts.OsrSlotTiers = *OsrTiers;
  }

  std::unique_ptr<MIRGraph> Graph;
  {
    MetricsPhaseTimer BuildPhase(Phase::MIRBuild);
    Graph = buildMIR(Info, Opts);
  }
  GraphRoots RootGuard(RT.heap(), *Graph);

  // §3.7: closures passed as parameters become constant callees under
  // specialization; inline them immediately, without guards.
  if (Config.ParameterSpecialization) {
    MetricsPhaseTimer PassPhase(Phase::OptPass);
    Timer InlineT;
    runClosureInlining(*Graph, RT, Config);
    if (metricsEnabled())
      metrics().recordPass("ClosureInlining",
                           static_cast<uint64_t>(InlineT.seconds() * 1e9));
  }

  runOptimizationPipeline(*Graph, RT, Config);

#ifndef NDEBUG
  std::string Violation = verifyGraph(*Graph);
  if (!Violation.empty()) {
    std::fprintf(stderr, "MIR verification failed for %s: %s\n",
                 Info->Name.c_str(), Violation.c_str());
    reportFatal("MIR verifier failure");
  }
#endif

  std::shared_ptr<NativeCode> Code;
  {
    MetricsPhaseTimer CodegenPhase(Phase::Codegen);
    Code = generateCode(*Graph);
  }
  if (FusionEnabled) {
    MetricsPhaseTimer FusionPhase(Phase::Fusion);
    Timer FuseT;
    FusionStats FuseStats;
    unsigned Fused = fuseMacroOps(*Code, &FuseStats);
    Stats.FusedOps += Fused;
    if (telemetryEnabled(TelPass)) {
      // Same span shape as the MIR passes: A/B = dispatched instruction
      // count before/after (the static Code.size() is unchanged), C = 0
      // guards removed (fused guards still bail), D = pairs fused.
      TelemetryEvent E;
      E.Kind = TelemetryEventKind::Pass;
      E.DurNs = static_cast<uint64_t>(FuseT.seconds() * 1e9);
      E.setFunc(Info->Name);
      E.setDetail("MacroFusion");
      E.A = Code->sizeInInstructions();
      E.B = Code->sizeInInstructionsPostFusion();
      E.C = 0;
      E.D = Fused;
      telemetry().record(E);
    }
  }
  AllCode.push_back(Code);

  double Seconds = T.seconds();
  if (telemetryEnabled(TelCompile)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::CompileEnd;
    E.setFunc(Info->Name);
    E.setDetail(Config.describe());
    E.DurNs = static_cast<uint64_t>(Seconds * 1e9);
    E.A = SpecArgs != nullptr;
    E.B = OsrPc != nullptr;
    E.C = Code->sizeInInstructions();
    telemetry().record(E);
  }
  Stats.CompileSeconds += Seconds;
  ++Stats.Compilations;
  if (SpecArgs)
    ++Stats.SpecializedCompiles;
  else
    ++Stats.GenericCompiles;

  FuncState &FS = state(Info);
  ++FS.Compiles;
  FS.CompileSeconds += Seconds;
  if (FS.Compiles > 1)
    ++Stats.Recompilations;
  FS.MinCodeSize = std::min(FS.MinCodeSize, Code->sizeInInstructions());
  FS.MinCodeSizePostFusion =
      std::min(FS.MinCodeSizePostFusion, Code->sizeInInstructionsPostFusion());
  FS.FusedOps += Code->FusedPairs;
  return Code;
}

Value Engine::execute(FuncState &FS, FunctionInfo *Info, const Value &ThisV,
                      const Value *Args, size_t NumArgs, bool AtOsr,
                      const std::vector<Value> *OsrSlots, Environment *Env,
                      Environment *ClosureEnv,
                      std::shared_ptr<NativeCode> CodeOverride) {
  // Keep the binary alive: nested calls may despecialize this function
  // and discard FS.Code while we are still executing it.
  std::shared_ptr<NativeCode> Code =
      CodeOverride ? std::move(CodeOverride) : FS.Code;
  ++FS.NativeRuns;
  ExecResult R = Exec.run(*Code, ThisV, Args, NumArgs, AtOsr,
                          OsrSlots ? OsrSlots->data() : nullptr,
                          OsrSlots ? OsrSlots->size() : 0, Env, ClosureEnv);
  if (R.K == ExecResult::Ok)
    return R.Result;
  if (R.K == ExecResult::Error)
    return Value::undefined();

  // --- Bailout: deoptimize to the interpreter. ---
  // The phase span covers deoptimization proper (snapshot decode, frame
  // rebuild); it is stopped before resumeFrame so the resumed
  // interpretation accounts to Interpret, not Bailout.
  MetricsPhaseTimer BailoutPhase(Phase::Bailout);
  ++Stats.Bailouts;
  ++Stats.BailoutsByReason[static_cast<size_t>(R.BailReason)];
  ++FS.Bailouts;
  ++FS.TotalBailouts;
  const Snapshot &S = Code->Snapshots[R.SnapshotId];
  if (telemetryEnabled(TelBailout)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::Bailout;
    E.Reason = R.BailReason;
    E.setFunc(Info->Name);
    E.setDetail(nopName(R.BailOp));
    E.A = R.BailPc;
    E.B = S.PC;
    telemetry().record(E);
  }
#ifdef JITVS_DEBUG_BAIL
  fprintf(stderr, "BAIL fn=%s pc=%u op=%s entries=%zu frameslots=%u\n",
          Info->Name.c_str(), S.PC, nopName(R.BailOp), S.Entries.size(),
          S.NumFrameSlots);
#endif

  // Feed the failure back so the next compile avoids this guard.
  switch (R.BailOp) {
  case NOp::AddI:
  case NOp::SubI:
  case NOp::MulI:
  case NOp::ModI:
  case NOp::NegI:
    Info->Feedback.at(S.PC).SawIntOverflow = true;
    break;
  case NOp::BoundsCheck:
    Info->Feedback.at(S.PC).SawOutOfBounds = true;
    break;
  default:
    break; // Tag guards: the interpreter re-records operand types.
  }

  // Reconstruct the interpreter frame from the snapshot.
  InterpFrame Frame(RT, Info);
  Frame.PC = S.PC;
  Frame.ThisV = ThisV;
  Frame.ClosureEnv = ClosureEnv;
  Frame.OrigArgs.assign(Args, Args + NumArgs);
  // The environment in effect is whatever the native frame was using
  // (adopted at OSR entry or created by the native prologue); reuse it so
  // mutations performed before the guard failure are preserved. No
  // allocation may happen between here and populating the frame: the
  // snapshot values in RegsAtBail are not GC roots.
  Frame.Env = R.EnvAtBail;

  auto DecodeEntry = [&](const SnapshotEntry &E) {
    if (E.IsConst)
      return Code->ConstPool[E.Index];
    return R.RegsAtBail[E.Index];
  };
  size_t NumEntries = S.Entries.size();
  for (size_t I = 0; I != NumEntries; ++I) {
    Value V = DecodeEntry(S.Entries[I]);
    if (I < S.NumFrameSlots) {
      if (I < Frame.Slots.size())
        Frame.Slots[I] = V;
    } else {
      Frame.Stack.push_back(V);
    }
  }

  // Repeated bailouts: the speculation was wrong. Discard the binary
  // BEFORE resuming — the resumed interpreter may immediately re-trigger
  // OSR, and re-entering the same failing code would nest bail/resume
  // cycles on the C++ stack for the rest of the loop. Discarding first
  // bounds the nesting: the next compile uses the refreshed feedback.
  if (FS.Bailouts >= BailoutLimit && FS.Code == Code) {
    recordCacheEvent(TelemetryEventKind::Discard, Info, "bailout-limit");
    FS.Code.reset();
    FS.Bailouts = 0;
    FS.Specialized = false;
  }

  BailoutPhase.stop();
  return RT.resumeFrame(Frame);
}

static bool allGeneric(const std::vector<ParamTier> &Tiers) {
  if (Tiers.empty())
    return false;
  for (ParamTier T : Tiers)
    if (T != ParamTier::Generic)
      return false;
  return true;
}

bool Engine::onCall(JSFunction *Callee, const Value &ThisV,
                    const Value *Args, size_t NumArgs, Value &Result) {
  FunctionInfo *Info = Callee->info();
  FuncState &FS = state(Info);

  if (FS.Code) {
    if (FS.Specialized) {
      if (sigMatches(FS.Sig, Args, NumArgs)) {
        recordCacheHit(FS, FS.Sig, Info);
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment());
        return true;
      }
      // Cache depth > 1 (the paper's future-work heuristic): other
      // cached signatures, then free slots.
      for (auto &[Sig, CachedCode] : FS.ExtraSpecializations) {
        if (sigMatches(Sig, Args, NumArgs)) {
          recordCacheHit(FS, Sig, Info);
          Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                           nullptr, nullptr, Callee->environment(),
                           CachedCode);
          return true;
        }
      }
      if (FS.ExtraSpecializations.size() + 1 < CacheDepth) {
        std::vector<Value> ArgVec(Args, Args + NumArgs);
        std::vector<ParamTier> Tiers = chooseTiers(Info, NumArgs);
        std::shared_ptr<NativeCode> NewCode =
            compile(Info, &ArgVec, &Tiers, nullptr, nullptr);
        FS.ExtraSpecializations.emplace_back(
            makeSig(&Tiers, Args, NumArgs), NewCode);
        ++Stats.NativeCalls;
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment(), NewCode);
        return true;
      }
      if (Policy == TierPolicy::Paper) {
        // Different arguments: discard, recompile generic, never try
        // again (Section 4).
        ++Stats.Despecializations;
        FS.EverDespecialized = true;
        FS.Cause = DespecializeCause::DifferentArgs;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         "different-args");
        FS.Code.reset();
        FS.Specialized = false;
        FS.NeverSpecialize = true;
        FS.Sig.clear();
        FS.ExtraSpecializations.clear();
        FS.Code = compile(Info, nullptr, nullptr, nullptr, nullptr);
        ++Stats.NativeCalls;
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment());
        return true;
      }
      // Tiered ladder: demote only the mismatching parameters one tier
      // and recompile; fully generic only once every tier is exhausted.
      bool SawTypeMismatch = false;
      std::vector<ParamTier> NewTiers =
          demoteTiers(Info, FS.Sig, Args, NumArgs, SawTypeMismatch);
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                 : DespecializeCause::ValueMismatch;
      recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                       despecializeCauseName(FS.Cause));
      FS.Code.reset();
      FS.Sig.clear();
      FS.ExtraSpecializations.clear();
      if (allGeneric(NewTiers)) {
        ++Stats.GenericFallbacks;
        FS.Specialized = false;
        FS.NeverSpecialize = true;
        FS.Code = compile(Info, nullptr, nullptr, nullptr, nullptr);
      } else {
        std::vector<Value> ArgVec(Args, Args + NumArgs);
        FS.Code = compile(Info, &ArgVec, &NewTiers, nullptr, nullptr);
        FS.Sig = makeSig(&NewTiers, Args, NumArgs);
      }
      ++Stats.NativeCalls;
      Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                       nullptr, nullptr, Callee->environment());
      return true;
    }
    ++Stats.NativeCalls;
    Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                     nullptr, nullptr, Callee->environment());
    return true;
  }

  if (Info->CallCount < CallThreshold) {
    ++Stats.InterpretedCalls;
    return false;
  }

  bool Specialize =
      Config.ParameterSpecialization && !FS.NeverSpecialize;
  if (Specialize) {
    std::vector<ParamTier> Tiers = chooseTiers(Info, NumArgs);
    if (allGeneric(Tiers)) {
      // The profile shows nothing stable: skip the ladder entirely.
      FS.Code = compile(Info, nullptr, nullptr, nullptr, nullptr);
    } else {
      std::vector<Value> ArgVec(Args, Args + NumArgs);
      FS.Code = compile(Info, &ArgVec, &Tiers, nullptr, nullptr);
      FS.Specialized = true;
      FS.EverSpecialized = true;
      FS.Sig = makeSig(&Tiers, Args, NumArgs);
    }
  } else {
    FS.Code = compile(Info, nullptr, nullptr, nullptr, nullptr);
  }
  ++Stats.NativeCalls;
  Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false, nullptr,
                   nullptr, Callee->environment());
  return true;
}

bool Engine::onLoopHead(InterpFrame &Frame, uint32_t PC, Value &Result) {
  FunctionInfo *Info = Frame.Info;
  if (Info->BackEdgeCount < LoopThreshold)
    return false;
  FuncState &FS = state(Info);

  bool Specialize =
      Config.ParameterSpecialization && !FS.NeverSpecialize;

  if (FS.Code && FS.Code->OsrPc == PC) {
    // Existing binary has an OSR entry here; specialized code baked the
    // OSR frame values in, so revalidate them.
    if (FS.Specialized &&
        !sigMatches(FS.OsrSig, Frame.Slots.data(), Frame.Slots.size())) {
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      if (Policy == TierPolicy::Paper) {
        FS.Cause = DespecializeCause::OsrRevalidation;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         "osr-revalidation");
        FS.Code.reset();
        FS.Specialized = false;
        FS.NeverSpecialize = true;
        FS.Sig.clear();
        FS.OsrSig.clear();
        FS.Code = compile(Info, nullptr, nullptr, &PC, nullptr);
      } else {
        // Tiered: demote the stale frame slots one tier and rebuild the
        // OSR binary; generic only when nothing is left to assume.
        bool SawTypeMismatch = false;
        std::vector<ParamTier> SlotTiers =
            demoteTiers(Info, FS.OsrSig, Frame.Slots.data(),
                        Frame.Slots.size(), SawTypeMismatch);
        FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                   : DespecializeCause::ValueMismatch;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         despecializeCauseName(FS.Cause));
        FS.Code.reset();
        FS.Sig.clear();
        FS.OsrSig.clear();
        if (allGeneric(SlotTiers)) {
          ++Stats.GenericFallbacks;
          FS.Specialized = false;
          FS.NeverSpecialize = true;
          FS.Code = compile(Info, nullptr, nullptr, &PC, nullptr);
        } else {
          // Entry parameters mirror the demoted tiers of their frame
          // slots (slot I is parameter I at entry).
          std::vector<ParamTier> ParamTiers(
              SlotTiers.begin(),
              SlotTiers.begin() +
                  std::min<size_t>(Info->NumParams, SlotTiers.size()));
          std::vector<Value> ArgVec = Frame.OrigArgs;
          std::vector<Value> SlotVec = Frame.Slots;
          FS.Code =
              compile(Info, &ArgVec, &ParamTiers, &PC, &SlotVec, &SlotTiers);
          FS.Sig = makeSig(&ParamTiers, ArgVec.data(), ArgVec.size());
          FS.OsrSig = makeSig(&SlotTiers, SlotVec.data(), SlotVec.size());
        }
      }
    }
  } else {
    // Compile (or recompile) with an OSR entry at this loop head.
    std::vector<ParamTier> Tiers;
    bool HaveTiers = false;
    if (FS.Specialized && FS.Code &&
        !sigMatches(FS.Sig, Frame.OrigArgs.data(), Frame.OrigArgs.size())) {
      // The running frame's arguments differ from the cached
      // specialization.
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      if (Policy == TierPolicy::Paper) {
        FS.Cause = DespecializeCause::DifferentArgs;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         "different-args");
        FS.Specialized = false;
        FS.NeverSpecialize = true;
        FS.Sig.clear();
        FS.OsrSig.clear();
        Specialize = false;
      } else {
        bool SawTypeMismatch = false;
        Tiers = demoteTiers(Info, FS.Sig, Frame.OrigArgs.data(),
                            Frame.OrigArgs.size(), SawTypeMismatch);
        HaveTiers = true;
        FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                   : DespecializeCause::ValueMismatch;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         despecializeCauseName(FS.Cause));
        FS.Specialized = false;
        FS.Sig.clear();
        FS.OsrSig.clear();
        if (allGeneric(Tiers)) {
          ++Stats.GenericFallbacks;
          FS.NeverSpecialize = true;
          Specialize = false;
        }
      }
    }
    // Avoid compile storms when several hot loops alternate in one
    // function: after a few rebuilds, leave the loop to the interpreter.
    if (FS.Code && FS.Compiles > 8)
      return false;
    FS.Code.reset();
    if (Specialize) {
      if (!HaveTiers)
        Tiers = chooseTiers(Info, Frame.OrigArgs.size());
      if (allGeneric(Tiers)) {
        FS.Code = compile(Info, nullptr, nullptr, &PC, nullptr);
      } else {
        std::vector<Value> ArgVec = Frame.OrigArgs;
        std::vector<Value> SlotVec = Frame.Slots;
        // Frame slots: parameters first (sharing the entry tiers), then
        // locals, which stay at the value tier until an OSR revalidation
        // demotes them.
        std::vector<ParamTier> SlotTiers(SlotVec.size(), ParamTier::Value);
        for (size_t I = 0; I != Tiers.size() && I != SlotTiers.size(); ++I)
          SlotTiers[I] = Tiers[I];
        FS.Code =
            compile(Info, &ArgVec, &Tiers, &PC, &SlotVec, &SlotTiers);
        FS.Specialized = true;
        FS.EverSpecialized = true;
        FS.Sig = makeSig(&Tiers, ArgVec.data(), ArgVec.size());
        FS.OsrSig = makeSig(&SlotTiers, SlotVec.data(), SlotVec.size());
      }
    } else {
      FS.Code = compile(Info, nullptr, nullptr, &PC, nullptr);
    }
  }

  if (!FS.Code || FS.Code->OsrOffset == ~0u)
    return false; // No usable OSR entry (e.g. unreachable loop head).

  ++Stats.OsrEntries;
  if (telemetryEnabled(TelOsr)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::OsrEntry;
    E.setFunc(Info->Name);
    E.A = PC;
    telemetry().record(E);
  }
  std::vector<Value> OsrSlots = Frame.Slots;
  Result = execute(FS, Info, Frame.ThisV, Frame.OrigArgs.data(),
                   Frame.OrigArgs.size(), /*AtOsr=*/true, &OsrSlots,
                   Frame.Env, Frame.ClosureEnv);
  return true;
}

std::vector<Engine::FunctionReport> Engine::functionReports() const {
  std::vector<FunctionReport> Out;
  for (const auto &[Info, FS] : States) {
    FunctionReport R;
    R.Name = Info->Name;
    R.WasSpecialized = FS.EverSpecialized;
    R.Despecialized = FS.EverDespecialized;
    R.Cause = FS.Cause;
    R.Compiles = FS.Compiles;
    R.CompileSeconds = FS.CompileSeconds;
    R.NativeRuns = FS.NativeRuns;
    R.Bailouts = FS.TotalBailouts;
    R.TierTransitions = FS.TierTransitions;
    R.CacheHits = FS.CacheHits;
    R.ValueTierHits = FS.ValueTierHits;
    R.TypeTierHits = FS.TypeTierHits;
    R.MinCodeSize = FS.MinCodeSize;
    R.MinCodeSizePostFusion = FS.MinCodeSizePostFusion;
    R.FusedOps = FS.FusedOps;
    Out.push_back(std::move(R));
  }
  return Out;
}

void Engine::publishMetrics() {
  if (MetricsPublished)
    return;
  MetricsPublished = true;
  Metrics &M = metrics();

  M.addCounter("engine.compilations", Stats.Compilations);
  M.addCounter("engine.recompilations", Stats.Recompilations);
  M.addCounter("engine.compiles.specialized", Stats.SpecializedCompiles);
  M.addCounter("engine.compiles.generic", Stats.GenericCompiles);
  M.addCounter("engine.despecializations", Stats.Despecializations);
  M.addCounter("engine.cache_hits", Stats.CacheHits);
  M.addCounter("engine.cache_hits.value_tier", Stats.ValueTierHits);
  M.addCounter("engine.cache_hits.type_tier", Stats.TypeTierHits);
  M.addCounter("engine.tier_demotions.value_to_type",
               Stats.TierDemotionsValueToType);
  M.addCounter("engine.tier_demotions.to_generic",
               Stats.TierDemotionsToGeneric);
  M.addCounter("engine.generic_fallbacks", Stats.GenericFallbacks);
  M.addCounter("engine.bailouts", Stats.Bailouts);
  for (size_t I = 0; I != NumBailoutReasons; ++I)
    if (Stats.BailoutsByReason[I])
      M.addCounter(std::string("engine.bailouts.") +
                       bailoutReasonName(static_cast<BailoutReason>(I)),
                   Stats.BailoutsByReason[I]);
  M.addCounter("engine.osr_entries", Stats.OsrEntries);
  M.addCounter("engine.calls.native", Stats.NativeCalls);
  M.addCounter("engine.calls.interpreted", Stats.InterpretedCalls);
  M.addCounter("engine.fused_ops", Stats.FusedOps);
  M.setGauge("engine.compile_seconds", Stats.CompileSeconds);

  for (const FunctionReport &R : functionReports()) {
    Metrics::FunctionMetrics FM;
    FM.NativeRuns = R.NativeRuns;
    FM.Compiles = R.Compiles;
    FM.CompileNs = static_cast<uint64_t>(R.CompileSeconds * 1e9);
    FM.Bailouts = R.Bailouts;
    FM.CacheHits = R.CacheHits;
    FM.TierTransitions = R.TierTransitions;
    FM.Despecializations = R.Despecialized ? 1 : 0;
    M.mergeFunction(R.Name, FM);
  }
}

NativeCode *Engine::compileNow(FunctionInfo *Info,
                               const std::vector<Value> *Args,
                               const std::vector<ParamTier> *Tiers) {
  FuncState &FS = state(Info);
  FS.Code = compile(Info, Args, Args ? Tiers : nullptr, nullptr, nullptr);
  FS.Specialized = Args != nullptr;
  if (Args)
    FS.Sig = makeSig(Tiers, Args->data(), Args->size());
  return FS.Code.get();
}
