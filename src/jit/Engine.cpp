//===- jit/Engine.cpp - Compilation driving and deoptimization ------------===//

#include "jit/Engine.h"

#include "jit/CodeCache.h"
#include "lir/Codegen.h"
#include "mir/MIRBuilder.h"
#include "native/Fusion.h"
#include "mir/Verifier.h"
#include "profiling/CallProfiler.h"
#include "support/Timer.h"
#include "telemetry/Metrics.h"
#include "telemetry/Telemetry.h"
#include "vm/Bytecode.h"
#include "vm/Interpreter.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>

using namespace jitvs;

const char *jitvs::despecializeCauseName(DespecializeCause C) {
  switch (C) {
  case DespecializeCause::None:
    return "none";
  case DespecializeCause::DifferentArgs:
    return "different-args";
  case DespecializeCause::OsrRevalidation:
    return "osr-revalidation";
  case DespecializeCause::ValueMismatch:
    return "value-mismatch";
  case DespecializeCause::TypeMismatch:
    return "type-mismatch";
  }
  return "invalid";
}

const char *jitvs::tierPolicyName(TierPolicy P) {
  switch (P) {
  case TierPolicy::Paper:
    return "paper";
  case TierPolicy::Tiered:
    return "tiered";
  }
  return "invalid";
}

namespace {

/// Records a one-line cache event ([cache] hit/despecialize/discard).
void recordCacheEvent(TelemetryEventKind Kind, const FunctionInfo *Info,
                      const char *Detail = nullptr) {
  if (!telemetryEnabled(TelCache))
    return;
  TelemetryEvent E;
  E.Kind = Kind;
  E.setFunc(Info->Name);
  if (Detail)
    E.setDetail(Detail);
  telemetry().record(E);
}

uint64_t monotonicNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

} // namespace

/// Roots everything the engine keeps alive across GC: cached argument
/// sets, cached OSR slot values, and the constant pools of all compiled
/// binaries. A compiling MIR graph is rooted separately via GraphRoots.
class Engine::EngineRoots final : public RootSource {
public:
  explicit EngineRoots(Engine &E) : E(E) { E.RT.heap().addRootSource(this); }
  ~EngineRoots() override { E.RT.heap().removeRootSource(this); }

  void traceRoots(GCVisitor &Visitor) override {
    // Only value-tier signature entries hold live values; type-tier
    // entries record a tag alone precisely so stale objects can die.
    auto TraceSig = [&Visitor](SpecSig &Sig) {
      for (ParamSig &P : Sig)
        if (P.Tier == ParamTier::Value)
          Visitor.visit(P.V);
    };
    auto TracePool = [&Visitor](NativeCode &Code) {
      for (Value &V : Code.ConstPool)
        Visitor.visit(V);
    };
    for (auto &[Info, FS] : E.States) {
      TraceSig(FS.Sig);
      TraceSig(FS.OsrSig);
      // Background-installed binaries are not in AllCode; root their
      // pools directly (redundant but harmless in synchronous mode).
      if (FS.Code)
        TracePool(*FS.Code);
      for (auto &[Sig, Code] : FS.ExtraSpecializations) {
        TraceSig(Sig);
        if (Code)
          TracePool(*Code);
      }
    }
    for (const auto &Code : E.AllCode)
      TracePool(*Code);
    // Shared-cache entries: each signature's baked-in values and each
    // body's constant pool stay live for as long as the entry can be
    // dispatched.
    if (E.Cache)
      E.Cache->forEachEntry([&](CodeCache::Entry &En) {
        TraceSig(En.Sig);
        TracePool(*En.Code);
      });
    // Retired-but-unreclaimed binaries: in-flight frames may still
    // execute them, so their pools must stay rooted until freed.
    E.Reclaimer.forEachRetained(TracePool);
    // Queued/running/completed compiles: the argument and OSR-slot
    // snapshots they bake in must survive until installed or dropped.
    // These were tenured at enqueue, so a minor collection never moves
    // them — the visitor reads but never writes, which keeps this walk
    // race-free against the worker reading the same vectors. (Completed
    // -but-uninstalled pools need no tracing: every main-heap value they
    // hold is one of these snapshot values or a program constant; fold
    // results live in the worker heap, which the main GC never sweeps.)
    if (E.Queue)
      E.Queue->forEachTask([&Visitor](CompileTask &T) {
        for (Value &V : T.SpecArgs)
          Visitor.visit(V);
        for (Value &V : T.OsrSlots)
          Visitor.visit(V);
      });
  }

private:
  Engine &E;
};

namespace {

/// Temporarily roots a MIR graph's constants while passes run (constant
/// folding may allocate strings, which can trigger a collection).
class GraphRoots final : public RootSource {
public:
  GraphRoots(Heap &H, MIRGraph &Graph) : H(H), Graph(Graph) {
    H.addRootSource(this);
  }
  ~GraphRoots() override { H.removeRootSource(this); }

  void traceRoots(GCVisitor &Visitor) override {
    Graph.forEachConstant([&Visitor](Value &V) { Visitor.visit(V); });
  }

private:
  Heap &H;
  MIRGraph &Graph;
};

} // namespace

Engine::Engine(Runtime &RT, const OptConfig &Config,
               const EngineKnobs &Knobs)
    : RT(RT), Config(Config), Exec(RT) {
  Roots = std::make_unique<EngineRoots>(*this);
  RT.setHooks(this);
  Policy = Knobs.Policy;
  FusionEnabled = Knobs.Fusion;
  Exec.setDispatchMode(Knobs.Dispatch);
  CallThreshold = Knobs.CallThreshold;
  LoopThreshold = Knobs.LoopThreshold;
  BailoutLimit = Knobs.BailoutLimit;
  CacheDepth = std::max(1u, Knobs.CacheDepth);
  ValueStabilityMax = Knobs.ValueStabilityMax;
  CompileThreadCount = Knobs.CompileThreads;
  CompileDrainMode = Knobs.CompileDrain;
  if (Knobs.CodeCacheBytes)
    Cache = std::make_unique<CodeCache>(Knobs.CodeCacheBytes);
  initCompileQueue();
}

Engine::Engine(Runtime &RT, const OptConfig &Config)
    : RT(RT), Config(Config), Exec(RT) {
  Roots = std::make_unique<EngineRoots>(*this);
  RT.setHooks(this);
  if (const char *P = std::getenv("JITVS_TIER_POLICY")) {
    if (!std::strcmp(P, "tiered"))
      Policy = TierPolicy::Tiered;
    else if (!std::strcmp(P, "paper"))
      Policy = TierPolicy::Paper;
  }
  if (const char *N = std::getenv("JITVS_TIER_VALUE_MAX"))
    if (int V = std::atoi(N); V > 0)
      ValueStabilityMax = static_cast<uint32_t>(V);
  if (const char *F = std::getenv("JITVS_FUSION"))
    FusionEnabled = std::strcmp(F, "0") != 0 && std::strcmp(F, "off") != 0;
  if (const char *T = std::getenv("JITVS_COMPILE_THREADS")) {
    if (!std::strcmp(T, "auto")) {
      unsigned HW = std::thread::hardware_concurrency();
      CompileThreadCount = HW > 1 ? HW - 1 : 1;
    } else if (int V = std::atoi(T); V > 0) {
      CompileThreadCount = static_cast<unsigned>(V);
    }
  }
  if (const char *D = std::getenv("JITVS_COMPILE_DRAIN"))
    CompileDrainMode = std::strcmp(D, "0") != 0 && std::strcmp(D, "off") != 0;
  if (const char *B = std::getenv("JITVS_CODE_CACHE_BYTES"))
    if (long long V = std::atoll(B); V > 0)
      Cache = std::make_unique<CodeCache>(static_cast<size_t>(V));
  initCompileQueue();
}

void Engine::initCompileQueue() {
  if (CompileThreadCount == 0)
    return;
  CompileThreadCount = std::min(CompileThreadCount, 16u);
  for (unsigned I = 0; I != CompileThreadCount; ++I) {
    auto FoldRT = std::make_unique<Runtime>();
    // Fold temporaries are unrooted in the worker heap; a collection
    // there would sweep constants mid-compile. Surviving allocations
    // are donated to the main heap at install, so the worker heap only
    // ever holds garbage from discarded compiles — bounded and freed
    // with the Runtime. The nursery is off so every fold allocation is
    // pointer-stable and chain-linked — detachAllocatedSince hands the
    // whole run to the main heap's old space without copying.
    FoldRT->heap().setGCThreshold(SIZE_MAX);
    FoldRT->heap().setNurseryEnabled(false);
    WorkerRTs.push_back(std::move(FoldRT));
  }
  Queue = std::make_unique<CompileQueue>(
      CompileThreadCount, /*Bound=*/128,
      [this](CompileTask &Task, unsigned WorkerIdx) {
        workerCompile(Task, *WorkerRTs[WorkerIdx]);
      });
}

Engine::~Engine() {
  // Stop the workers before anything they compile against can go away.
  // Pending jobs are dropped; running ones finish and are joined. The
  // queue object survives until publishMetrics has read its counters.
  if (Queue)
    Queue->shutdown();
  if (metricsEnabled())
    publishMetrics();
  Queue.reset();
  if (RT.hooks() == this)
    RT.setHooks(nullptr);
}

Engine::FuncState &Engine::state(FunctionInfo *Info) {
  return States[Info];
}

// Signature helpers (makeSpecSig / specSigMatches / specSigTier) moved to
// jit/SpecSig.{h,cpp}, shared with the SpecSig-keyed code cache.

std::vector<ParamTier>
Engine::tiersFromStability(const std::vector<ParamStability> &Stab,
                           size_t NumArgs) const {
  std::vector<ParamTier> Tiers(NumArgs, ParamTier::Value);
  for (size_t I = 0; I != NumArgs && I != Stab.size(); ++I) {
    if (Stab[I].DistinctValues <= ValueStabilityMax)
      Tiers[I] = ParamTier::Value;
    else if (Stab[I].DistinctTags == 1)
      Tiers[I] = ParamTier::Type;
    else
      Tiers[I] = ParamTier::Generic;
  }
  return Tiers;
}

std::vector<ParamTier> Engine::chooseTiers(FunctionInfo *Info,
                                           size_t NumArgs) {
  if (Policy != TierPolicy::Tiered || !Profiler)
    return std::vector<ParamTier>(NumArgs, ParamTier::Value);
  return tiersFromStability(Profiler->paramStability(Info), NumArgs);
}

std::vector<ParamTier>
Engine::chooseTiersFromSnapshot(const FunctionInfo *Info,
                                size_t NumArgs) const {
  if (Policy != TierPolicy::Tiered || !Profiler)
    return std::vector<ParamTier>(NumArgs, ParamTier::Value);
  return tiersFromStability(Profiler->paramStabilitySnapshot(Info), NumArgs);
}

std::vector<ParamTier> Engine::demoteTiers(FunctionInfo *Info,
                                           const SpecSig &Sig,
                                           const Value *Args, size_t NumArgs,
                                           bool &SawTypeMismatch) {
  SawTypeMismatch = false;
  std::vector<ParamTier> NewTiers(NumArgs, ParamTier::Generic);
  if (Sig.size() != NumArgs) {
    // Arity changed underneath the cache: no per-parameter facts carry
    // over; treat as a whole-signature type mismatch.
    SawTypeMismatch = true;
    Stats.TierDemotionsToGeneric += Sig.size();
    return NewTiers;
  }
  auto RecordTransition = [&](size_t I, const char *Edge) {
    ++state(Info).TierTransitions;
    if (!telemetryEnabled(TelCache))
      return;
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::TierTransition;
    E.setFunc(Info->Name);
    E.setDetail(Edge);
    E.A = I;
    telemetry().record(E);
  };
  for (size_t I = 0; I != NumArgs; ++I) {
    const ParamSig &P = Sig[I];
    switch (P.Tier) {
    case ParamTier::Value:
      if (P.V.sameSpecializationValue(Args[I])) {
        NewTiers[I] = ParamTier::Value;
      } else if (P.V.tag() == Args[I].tag()) {
        // The ladder's key step: same tag, new value -> keep the type
        // fact, drop only the exact-value assumption.
        NewTiers[I] = ParamTier::Type;
        ++Stats.TierDemotionsValueToType;
        RecordTransition(I, "value->type");
      } else {
        NewTiers[I] = ParamTier::Generic;
        SawTypeMismatch = true;
        ++Stats.TierDemotionsToGeneric;
        RecordTransition(I, "value->generic");
      }
      break;
    case ParamTier::Type:
      if (P.Tag == Args[I].tag()) {
        NewTiers[I] = ParamTier::Type;
      } else {
        NewTiers[I] = ParamTier::Generic;
        SawTypeMismatch = true;
        ++Stats.TierDemotionsToGeneric;
        RecordTransition(I, "type->generic");
      }
      break;
    case ParamTier::Generic:
      NewTiers[I] = ParamTier::Generic;
      break;
    }
  }
  return NewTiers;
}

void Engine::recordCacheHit(FuncState &FS, const SpecSig &Sig,
                            const FunctionInfo *Info) {
  ++Stats.CacheHits;
  ++FS.CacheHits;
  // A binary is a "type-tier" reuse when its strongest remaining
  // assumption is a tag; anything baking at least one exact value — and
  // the degenerate zero-parameter signature, which the paper policy
  // treats as (vacuously) value-specialized — counts as a value hit.
  if (specSigTier(Sig) == ParamTier::Type) {
    ++Stats.TypeTierHits;
    ++FS.TypeTierHits;
  } else {
    ++Stats.ValueTierHits;
    ++FS.ValueTierHits;
  }
  ++Stats.NativeCalls;
  recordCacheEvent(TelemetryEventKind::CacheHit, Info);
}

Engine::PipelineOut Engine::runCompilePipeline(
    FunctionInfo *Info, const std::vector<Value> *SpecArgs,
    const std::vector<ParamTier> *Tiers, const uint32_t *OsrPc,
    const std::vector<Value> *OsrSlots,
    const std::vector<ParamTier> *OsrTiers, Runtime &FoldRT,
    const FeedbackSnapshot *Feedback, bool OnMainThread) {
  Timer T;
  MetricsPhaseTimer CompilePhase(Phase::Compile);

  if (telemetryEnabled(TelCompile)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::CompileStart;
    E.setFunc(Info->Name);
    E.setDetail(Config.describe());
    E.A = SpecArgs != nullptr;
    E.B = OsrPc != nullptr;
    telemetry().record(E);
  }

  BuildOptions Opts;
  if (SpecArgs) {
    Opts.SpecializedArgs = *SpecArgs;
    if (Tiers)
      Opts.ParamTiers = *Tiers;
  }
  if (OsrPc) {
    Opts.OsrPc = *OsrPc;
    if (OsrSlots)
      Opts.OsrSlotValues = *OsrSlots;
    if (OsrTiers)
      Opts.OsrSlotTiers = *OsrTiers;
  }
  Opts.Feedback = Feedback;

  std::unique_ptr<MIRGraph> Graph;
  {
    MetricsPhaseTimer BuildPhase(Phase::MIRBuild);
    Graph = buildMIR(Info, Opts);
  }
  // Main thread: folding allocates on the live heap, so the graph's
  // constants must be rooted across a possible collection. Workers fold
  // on a private GC-disabled heap instead — nothing can be swept there.
  std::unique_ptr<GraphRoots> RootGuard;
  if (OnMainThread)
    RootGuard = std::make_unique<GraphRoots>(RT.heap(), *Graph);

  // §3.7: closures passed as parameters become constant callees under
  // specialization; inline them immediately, without guards.
  if (Config.ParameterSpecialization) {
    MetricsPhaseTimer PassPhase(Phase::OptPass);
    Timer InlineT;
    runClosureInlining(*Graph, FoldRT, Config);
    if (metricsEnabled())
      metrics().recordPass("ClosureInlining",
                           static_cast<uint64_t>(InlineT.seconds() * 1e9));
  }

  runOptimizationPipeline(*Graph, FoldRT, Config);

#ifndef NDEBUG
  std::string Violation = verifyGraph(*Graph);
  if (!Violation.empty()) {
    std::fprintf(stderr, "MIR verification failed for %s: %s\n",
                 Info->Name.c_str(), Violation.c_str());
    reportFatal("MIR verifier failure");
  }
#endif

  std::shared_ptr<NativeCode> Code;
  {
    MetricsPhaseTimer CodegenPhase(Phase::Codegen);
    Code = generateCode(*Graph);
  }
  unsigned TotalFused = 0;
  if (FusionEnabled) {
    MetricsPhaseTimer FusionPhase(Phase::Fusion);
    Timer FuseT;
    FusionStats FuseStats;
    unsigned Fused = fuseMacroOps(*Code, &FuseStats);
    TotalFused += Fused;
    if (telemetryEnabled(TelPass)) {
      // Same span shape as the MIR passes: A/B = dispatched instruction
      // count before/after (the static Code.size() is unchanged), C = 0
      // guards removed (fused guards still bail), D = pairs fused.
      TelemetryEvent E;
      E.Kind = TelemetryEventKind::Pass;
      E.DurNs = static_cast<uint64_t>(FuseT.seconds() * 1e9);
      E.setFunc(Info->Name);
      E.setDetail("MacroFusion");
      E.A = Code->sizeInInstructions();
      E.B = Code->sizeInInstructionsPostFusion();
      E.C = 0;
      E.D = Fused;
      telemetry().record(E);
    }
  }

  double Seconds = T.seconds();
  if (telemetryEnabled(TelCompile)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::CompileEnd;
    E.setFunc(Info->Name);
    E.setDetail(Config.describe());
    E.DurNs = static_cast<uint64_t>(Seconds * 1e9);
    E.A = SpecArgs != nullptr;
    E.B = OsrPc != nullptr;
    E.C = Code->sizeInInstructions();
    telemetry().record(E);
  }
  PipelineOut Out;
  Out.Code = std::move(Code);
  Out.Seconds = Seconds;
  Out.Fused = TotalFused;
  return Out;
}

std::shared_ptr<NativeCode>
Engine::compile(FunctionInfo *Info, const std::vector<Value> *SpecArgs,
                const std::vector<ParamTier> *Tiers, const uint32_t *OsrPc,
                const std::vector<Value> *OsrSlots,
                const std::vector<ParamTier> *OsrTiers, bool ForCache) {
  PipelineOut Out =
      runCompilePipeline(Info, SpecArgs, Tiers, OsrPc, OsrSlots, OsrTiers,
                         RT, /*Feedback=*/nullptr, /*OnMainThread=*/true);
  Stats.FusedOps += Out.Fused;
  // Cache-destined bodies skip the forever-pin: their lifetime (and
  // their pool's rooting) is owned by the cache entry, then by the
  // reclaimer once evicted or invalidated — otherwise the byte budget
  // could never free anything.
  if (!ForCache)
    AllCode.push_back(Out.Code);
  Stats.CompileSeconds += Out.Seconds;
  // A synchronous compile blocks the caller for its whole duration.
  Stats.CompileStallSeconds += Out.Seconds;
  ++Stats.Compilations;
  if (SpecArgs)
    ++Stats.SpecializedCompiles;
  else
    ++Stats.GenericCompiles;

  FuncState &FS = state(Info);
  ++FS.Compiles;
  FS.CompileSeconds += Out.Seconds;
  if (FS.Compiles > 1)
    ++Stats.Recompilations;
  FS.MinCodeSize = std::min(FS.MinCodeSize, Out.Code->sizeInInstructions());
  FS.MinCodeSizePostFusion = std::min(FS.MinCodeSizePostFusion,
                                      Out.Code->sizeInInstructionsPostFusion());
  FS.FusedOps += Out.Code->FusedPairs;
  return Out.Code;
}

static bool allGenericTiers(const std::vector<ParamTier> &Tiers) {
  if (Tiers.empty())
    return false;
  for (ParamTier T : Tiers)
    if (T != ParamTier::Generic)
      return false;
  return true;
}

void Engine::workerCompile(CompileTask &Task, Runtime &FoldRT) {
  MetricsPhaseTimer QueuePhase(Phase::CompileQueue);

  bool Specialized = Task.Specialized;
  bool HaveTiers = Task.HaveTiers;
  std::vector<ParamTier> Tiers = Task.Tiers;
  if (Specialized && Task.ChooseTiersOnWorker) {
    // Tiered first compiles read the profile here, off-thread, through
    // the seqlock snapshot — by the time a queued compile runs, the
    // profile is richer than it was at enqueue anyway.
    Tiers = chooseTiersFromSnapshot(Task.Info, Task.SpecArgs.size());
    HaveTiers = true;
    if (allGenericTiers(Tiers))
      Specialized = false; // Nothing stable: build generic instead.
  }
  bool HaveSlotTiers = Task.HaveOsrTiers;
  std::vector<ParamTier> SlotTiers = Task.OsrTiers;
  if (Task.HasOsr && Specialized && !HaveSlotTiers) {
    // First OSR compile: frame slots are parameters first (sharing the
    // entry tiers), then locals at the value tier — same shape the
    // synchronous loop-head path builds.
    SlotTiers.assign(Task.OsrSlots.size(), ParamTier::Value);
    for (size_t I = 0; I != Tiers.size() && I != SlotTiers.size(); ++I)
      SlotTiers[I] = Tiers[I];
    HaveSlotTiers = true;
  }

  auto Out = std::make_unique<CompileOutcome>();
  GCObject *Mark = FoldRT.heap().allocationMark();
  const uint32_t *OsrPc = Task.HasOsr ? &Task.OsrPc : nullptr;
  PipelineOut P = runCompilePipeline(
      Task.Info, Specialized ? &Task.SpecArgs : nullptr,
      Specialized && HaveTiers ? &Tiers : nullptr, OsrPc,
      Task.HasOsr && Specialized ? &Task.OsrSlots : nullptr,
      Task.HasOsr && Specialized && HaveSlotTiers ? &SlotTiers : nullptr,
      FoldRT, Task.Feedback.get(), /*OnMainThread=*/false);
  // Fold helpers may set the error flag (they never throw to users from
  // a compile); clear it so one poisoned fold cannot taint later jobs.
  FoldRT.clearError();

  Out->Code = std::move(P.Code);
  Out->Seconds = P.Seconds;
  Out->Fused = P.Fused;
  Out->Specialized = Specialized;
  Out->HaveTiers = Specialized && HaveTiers;
  if (Out->HaveTiers)
    Out->Tiers = std::move(Tiers);
  Out->HaveSlotTiers = Task.HasOsr && Specialized && HaveSlotTiers;
  if (Out->HaveSlotTiers)
    Out->SlotTiers = std::move(SlotTiers);
  Out->Donated = FoldRT.heap().detachAllocatedSince(Mark);
  // Publication: the release store pairs with the pump's acquire load,
  // making every write above (including the code buffer) visible to the
  // main thread before the pointer is.
  Task.Result.store(Out.release(), std::memory_order_release);
}

std::shared_ptr<const FeedbackSnapshot>
Engine::captureFeedback(FunctionInfo *Info) {
  auto S = std::make_shared<FeedbackSnapshot>();
  // Whole program, not just Info: closure inlining reads callee
  // feedback, and any function reachable through a constant closure can
  // be built into this graph.
  if (Program *P = Info->Parent) {
    for (size_t I = 0; I != P->numFunctions(); ++I) {
      FunctionInfo *F = P->function(static_cast<uint32_t>(I));
      S->add(F, F->Feedback);
    }
  } else {
    S->add(Info, Info->Feedback);
  }
  return S;
}

void Engine::enqueueCompileTask(FunctionInfo *Info, FuncState &FS,
                                std::unique_ptr<CompileTask> Task) {
  Task->Info = Info;
  Task->Generation = FS.Generation;
  Task->Feedback = captureFeedback(Info);
  Task->EnqueueNs = monotonicNowNs();
  // Tenure the value snapshots before a worker can see them: a minor
  // collection moves nursery objects, and the worker reads these vectors
  // without the heap lock. After this the snapshots only reference
  // old-space objects, which never move.
  if (RT.heap().nurseryEnabled()) {
    TempRoots Roots(RT.heap());
    Roots.addVector(Task->SpecArgs);
    Roots.addVector(Task->OsrSlots);
    RT.heap().minorCollect();
  }
  CompileQueue::EnqueueResult R =
      Queue->enqueue(std::shared_ptr<CompileTask>(std::move(Task)));
  if (R != CompileQueue::EnqueueResult::Full)
    FS.CompilePending = true;
  if (metricsEnabled())
    metrics().setGauge("engine.compile_queue.depth",
                       static_cast<double>(Queue->depth()));
}

void Engine::retireCode(std::shared_ptr<NativeCode> Code) {
  if (!Code)
    return;
  if (Queue)
    Reclaimer.retire(std::move(Code));
  // Synchronous mode: AllCode keeps the pool rooted forever (legacy
  // behavior); dropping the reference here is all the unlinking needed.
}

void Engine::pumpCompileQueue() {
  if (!Queue)
    return;
  // Dispatch boundaries are the reclamation safepoints: any frame still
  // executing retired code entered before this boundary and pins its
  // binary via the execute()-local shared_ptr.
  Reclaimer.tick();
  if (!Queue->hasCompleted())
    return;
  for (const auto &Task : Queue->takeCompleted())
    installCompleted(*Task);
  if (metricsEnabled())
    metrics().setGauge("engine.compile_queue.depth",
                       static_cast<double>(Queue->depth()));
}

void Engine::installCompleted(CompileTask &Task) {
  CompileOutcome *Out = Task.Result.load(std::memory_order_acquire);
  if (!Out)
    return; // Worker died mid-task; nothing was published.
  FuncState &FS = state(Task.Info);
  FS.CompilePending = false;

  // The worker's wall-clock counts as compile time whether or not the
  // result still installs — the work happened.
  Stats.CompileSeconds += Out->Seconds;
  if (metricsEnabled()) {
    metrics().recordValue("compile_queue.wait_ns",
                          monotonicNowNs() - Task.EnqueueNs);
    metrics().recordValue("compile_queue.stall_hidden_ns",
                          static_cast<uint64_t>(Out->Seconds * 1e9));
  }

  if (Task.Generation != FS.Generation || !Out->Code) {
    // The policy moved on (bailout discard, newer despecialization)
    // while this compile was in flight: drop it. The outcome destructor
    // frees the donated fold allocations nothing ever referenced.
    if (metricsEnabled())
      metrics().addCounter("engine.compile_queue.stale_results", 1);
    return;
  }

  // Adopt the worker-heap fold allocations the constant pool points
  // into before the binary becomes reachable by the GC's root walk.
  RT.heap().adoptChain(Out->Donated);
  Out->Donated = {};

  // Cache-bound compiles publish into the shared cache and leave the
  // primary slot alone. (A worker-side all-generic tier choice falls
  // through to the normal install: generic bodies are never entries.)
  if (Task.ForCodeCache && Out->Specialized && Cache) {
    Stats.FusedOps += Out->Fused;
    ++Stats.Compilations;
    ++Stats.SpecializedCompiles;
    ++FS.Compiles;
    FS.CompileSeconds += Out->Seconds;
    if (FS.Compiles > 1)
      ++Stats.Recompilations;
    FS.MinCodeSize = std::min(FS.MinCodeSize, Out->Code->sizeInInstructions());
    FS.MinCodeSizePostFusion = std::min(
        FS.MinCodeSizePostFusion, Out->Code->sizeInInstructionsPostFusion());
    FS.FusedOps += Out->Code->FusedPairs;
    FS.EverSpecialized = true;
    Cache->insert(Task.Info, FS.Generation,
                  makeSpecSig(Out->HaveTiers ? &Out->Tiers : nullptr,
                              Task.SpecArgs.data(), Task.SpecArgs.size()),
                  Out->Code, Reclaimer);
    return;
  }

  // Atomic-publication install: unlink (retire) the stale body, link
  // the new one. In-flight frames of the old body drain through their
  // existing bailout/resume points; the reclaimer frees it once they do.
  retireCode(std::move(FS.Code));
  for (auto &[Sig, ExtraCode] : FS.ExtraSpecializations)
    retireCode(std::move(ExtraCode));
  FS.ExtraSpecializations.clear();
  FS.Code = Out->Code;

  Stats.FusedOps += Out->Fused;
  ++Stats.Compilations;
  if (Out->Specialized)
    ++Stats.SpecializedCompiles;
  else
    ++Stats.GenericCompiles;
  ++FS.Compiles;
  FS.CompileSeconds += Out->Seconds;
  if (FS.Compiles > 1)
    ++Stats.Recompilations;
  FS.MinCodeSize = std::min(FS.MinCodeSize, FS.Code->sizeInInstructions());
  FS.MinCodeSizePostFusion = std::min(
      FS.MinCodeSizePostFusion, FS.Code->sizeInInstructionsPostFusion());
  FS.FusedOps += FS.Code->FusedPairs;

  FS.Specialized = Out->Specialized;
  FS.Bailouts = 0;
  if (Out->Specialized) {
    FS.EverSpecialized = true;
    FS.Sig = makeSpecSig(Out->HaveTiers ? &Out->Tiers : nullptr,
                     Task.SpecArgs.data(), Task.SpecArgs.size());
    if (Task.HasOsr)
      FS.OsrSig = makeSpecSig(Out->HaveSlotTiers ? &Out->SlotTiers : nullptr,
                          Task.OsrSlots.data(), Task.OsrSlots.size());
    else
      FS.OsrSig.clear();
  } else {
    FS.Sig.clear();
    FS.OsrSig.clear();
  }
}

void Engine::drainCompiles() {
  if (!Queue)
    return;
  Timer T;
  Queue->drain();
  // Waiting on the queue is main-thread stall, the thing the background
  // pipeline exists to avoid; drain mode measures it honestly.
  Stats.CompileStallSeconds += T.seconds();
  pumpCompileQueue();
}

Value Engine::execute(FuncState &FS, FunctionInfo *Info, const Value &ThisV,
                      const Value *Args, size_t NumArgs, bool AtOsr,
                      const std::vector<Value> *OsrSlots, Environment *Env,
                      Environment *ClosureEnv,
                      std::shared_ptr<NativeCode> CodeOverride) {
  // Keep the binary alive: nested calls may despecialize this function
  // and discard FS.Code while we are still executing it.
  std::shared_ptr<NativeCode> Code =
      CodeOverride ? std::move(CodeOverride) : FS.Code;
  ++FS.NativeRuns;
  ExecResult R = Exec.run(*Code, ThisV, Args, NumArgs, AtOsr,
                          OsrSlots ? OsrSlots->data() : nullptr,
                          OsrSlots ? OsrSlots->size() : 0, Env, ClosureEnv);
  if (R.K == ExecResult::Ok)
    return R.Result;
  if (R.K == ExecResult::Error)
    return Value::undefined();

  // --- Bailout: deoptimize to the interpreter. ---
  // The phase span covers deoptimization proper (snapshot decode, frame
  // rebuild); it is stopped before resumeFrame so the resumed
  // interpretation accounts to Interpret, not Bailout.
  MetricsPhaseTimer BailoutPhase(Phase::Bailout);
  ++Stats.Bailouts;
  ++Stats.BailoutsByReason[static_cast<size_t>(R.BailReason)];
  ++FS.Bailouts;
  ++FS.TotalBailouts;
  const Snapshot &S = Code->Snapshots[R.SnapshotId];
  if (telemetryEnabled(TelBailout)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::Bailout;
    E.Reason = R.BailReason;
    E.setFunc(Info->Name);
    E.setDetail(nopName(R.BailOp));
    E.A = R.BailPc;
    E.B = S.PC;
    telemetry().record(E);
  }
#ifdef JITVS_DEBUG_BAIL
  fprintf(stderr, "BAIL fn=%s pc=%u op=%s entries=%zu frameslots=%u\n",
          Info->Name.c_str(), S.PC, nopName(R.BailOp), S.Entries.size(),
          S.NumFrameSlots);
#endif

  // Feed the failure back so the next compile avoids this guard.
  switch (R.BailOp) {
  case NOp::AddI:
  case NOp::SubI:
  case NOp::MulI:
  case NOp::ModI:
  case NOp::NegI:
    Info->Feedback.at(S.PC).SawIntOverflow = true;
    break;
  case NOp::BoundsCheck:
    Info->Feedback.at(S.PC).SawOutOfBounds = true;
    break;
  default:
    break; // Tag guards: the interpreter re-records operand types.
  }

  // Reconstruct the interpreter frame from the snapshot.
  InterpFrame Frame(RT, Info);
  Frame.PC = S.PC;
  Frame.ThisV = ThisV;
  Frame.ClosureEnv = ClosureEnv;
  Frame.OrigArgs.assign(Args, Args + NumArgs);
  // The environment in effect is whatever the native frame was using
  // (adopted at OSR entry or created by the native prologue); reuse it so
  // mutations performed before the guard failure are preserved. No
  // allocation may happen between here and populating the frame: the
  // snapshot values in RegsAtBail are not GC roots.
  Frame.Env = R.EnvAtBail;

  auto DecodeEntry = [&](const SnapshotEntry &E) {
    if (E.IsConst)
      return Code->ConstPool[E.Index];
    return R.RegsAtBail[E.Index];
  };
  size_t NumEntries = S.Entries.size();
  for (size_t I = 0; I != NumEntries; ++I) {
    Value V = DecodeEntry(S.Entries[I]);
    if (I < S.NumFrameSlots) {
      if (I < Frame.Slots.size())
        Frame.Slots[I] = V;
    } else {
      Frame.Stack.push_back(V);
    }
  }

  // Repeated bailouts: the speculation was wrong. Discard the binary
  // BEFORE resuming — the resumed interpreter may immediately re-trigger
  // OSR, and re-entering the same failing code would nest bail/resume
  // cycles on the C++ stack for the rest of the loop. Discarding first
  // bounds the nesting: the next compile uses the refreshed feedback.
  if (FS.Bailouts >= BailoutLimit) {
    if (FS.Code == Code) {
      recordCacheEvent(TelemetryEventKind::Discard, Info, "bailout-limit");
      retireCode(std::move(FS.Code));
      FS.Bailouts = 0;
      FS.Specialized = false;
      // Invalidate any in-flight background compile: it was built from
      // the pre-bailout feedback and would reinstate the failing guards.
      ++FS.Generation;
      // Shared-cache entries were built from the same stale feedback;
      // drop them too (the generation stamp backstops any we miss).
      if (Cache)
        Cache->invalidate(Info, Reclaimer);
    } else if (Cache && Cache->entriesFor(Info)) {
      // The bailing body is a shared-cache entry (dispatched via
      // CodeOverride, so FS.Code never matched): same discard policy.
      recordCacheEvent(TelemetryEventKind::Discard, Info, "bailout-limit");
      Cache->invalidate(Info, Reclaimer);
      FS.Bailouts = 0;
      ++FS.Generation;
    }
  }

  BailoutPhase.stop();
  return RT.resumeFrame(Frame);
}

bool Engine::onCall(JSFunction *Callee, const Value &ThisV,
                    const Value *Args, size_t NumArgs, Value &Result) {
  if (Queue)
    return onCallAsync(Callee, ThisV, Args, NumArgs, Result);
  // Cache mode retires evicted bodies through the reclaimer even without
  // a compile queue; dispatch boundaries are its safepoints.
  if (Cache)
    Reclaimer.tick();
  FunctionInfo *Info = Callee->info();
  FuncState &FS = state(Info);

  if (FS.Code) {
    if (FS.Specialized) {
      if (specSigMatches(FS.Sig, Args, NumArgs)) {
        recordCacheHit(FS, FS.Sig, Info);
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment());
        return true;
      }
      // Cache depth > 1 (the paper's future-work heuristic): other
      // cached signatures, then free slots.
      for (auto &[Sig, CachedCode] : FS.ExtraSpecializations) {
        if (specSigMatches(Sig, Args, NumArgs)) {
          recordCacheHit(FS, Sig, Info);
          Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                           nullptr, nullptr, Callee->environment(),
                           CachedCode);
          return true;
        }
      }
      // Shared-cache secondary dispatch: a body specialized for these
      // arguments by an earlier call (possibly another session) answers
      // instead of despecializing. A miss with signature headroom grows
      // the cache; only past the per-function cap does the policy fall
      // back to generic.
      if (Cache) {
        const SpecSig *HitSig = nullptr;
        if (std::shared_ptr<NativeCode> CachedCode = Cache->lookup(
                Info, FS.Generation, Args, NumArgs, Reclaimer, &HitSig)) {
          recordCacheHit(FS, *HitSig, Info);
          Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                           nullptr, nullptr, Callee->environment(),
                           std::move(CachedCode));
          return true;
        }
        Cache->noteMiss();
        if (Config.ParameterSpecialization && !FS.NeverSpecialize &&
            Cache->entriesFor(Info) < CodeCacheSigLimit) {
          std::vector<ParamTier> Tiers = chooseTiers(Info, NumArgs);
          if (!allGenericTiers(Tiers)) {
            std::vector<Value> ArgVec(Args, Args + NumArgs);
            std::shared_ptr<NativeCode> NewCode =
                compile(Info, &ArgVec, &Tiers, nullptr, nullptr, nullptr,
                        /*ForCache=*/true);
            FS.EverSpecialized = true;
            Cache->insert(Info, FS.Generation,
                          makeSpecSig(&Tiers, Args, NumArgs), NewCode,
                          Reclaimer);
            ++Stats.NativeCalls;
            Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                             nullptr, nullptr, Callee->environment(),
                             std::move(NewCode));
            return true;
          }
        }
        // Signature cap reached (or nothing stable to assume): fall
        // through to the one-binary miss policy below, and drop the
        // function's entries — it is going generic.
        Cache->invalidate(Info, Reclaimer);
        ++FS.Generation;
      }
      if (FS.ExtraSpecializations.size() + 1 < CacheDepth) {
        std::vector<Value> ArgVec(Args, Args + NumArgs);
        std::vector<ParamTier> Tiers = chooseTiers(Info, NumArgs);
        std::shared_ptr<NativeCode> NewCode =
            compile(Info, &ArgVec, &Tiers, nullptr, nullptr);
        FS.ExtraSpecializations.emplace_back(
            makeSpecSig(&Tiers, Args, NumArgs), NewCode);
        ++Stats.NativeCalls;
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment(), NewCode);
        return true;
      }
      if (Policy == TierPolicy::Paper) {
        // Different arguments: discard, recompile generic, never try
        // again (Section 4).
        ++Stats.Despecializations;
        FS.EverDespecialized = true;
        FS.Cause = DespecializeCause::DifferentArgs;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         "different-args");
        FS.Code.reset();
        FS.Specialized = false;
        FS.NeverSpecialize = true;
        FS.Sig.clear();
        FS.ExtraSpecializations.clear();
        FS.Code = compile(Info, nullptr, nullptr, nullptr, nullptr);
        ++Stats.NativeCalls;
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment());
        return true;
      }
      // Tiered ladder: demote only the mismatching parameters one tier
      // and recompile; fully generic only once every tier is exhausted.
      bool SawTypeMismatch = false;
      std::vector<ParamTier> NewTiers =
          demoteTiers(Info, FS.Sig, Args, NumArgs, SawTypeMismatch);
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                 : DespecializeCause::ValueMismatch;
      recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                       despecializeCauseName(FS.Cause));
      FS.Code.reset();
      FS.Sig.clear();
      FS.ExtraSpecializations.clear();
      if (allGenericTiers(NewTiers)) {
        ++Stats.GenericFallbacks;
        FS.Specialized = false;
        FS.NeverSpecialize = true;
        FS.Code = compile(Info, nullptr, nullptr, nullptr, nullptr);
      } else {
        std::vector<Value> ArgVec(Args, Args + NumArgs);
        FS.Code = compile(Info, &ArgVec, &NewTiers, nullptr, nullptr);
        FS.Sig = makeSpecSig(&NewTiers, Args, NumArgs);
      }
      ++Stats.NativeCalls;
      Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                       nullptr, nullptr, Callee->environment());
      return true;
    }
    // Generic primary (e.g. after an OSR-revalidation rebuild): prefer a
    // matching specialized body from the shared cache when one exists.
    if (Cache && Config.ParameterSpecialization && !FS.NeverSpecialize) {
      const SpecSig *HitSig = nullptr;
      if (std::shared_ptr<NativeCode> CachedCode = Cache->lookup(
              Info, FS.Generation, Args, NumArgs, Reclaimer, &HitSig)) {
        recordCacheHit(FS, *HitSig, Info);
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment(),
                         std::move(CachedCode));
        return true;
      }
    }
    ++Stats.NativeCalls;
    Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                     nullptr, nullptr, Callee->environment());
    return true;
  }

  if (Info->CallCount < CallThreshold) {
    ++Stats.InterpretedCalls;
    return false;
  }

  bool Specialize =
      Config.ParameterSpecialization && !FS.NeverSpecialize;
  // Cache mode routes hot specialized compiles into the shared cache and
  // leaves FuncState::Code for generic/OSR bodies: the cache *is* the
  // entry dispatch, so a body compiled for one session's arguments
  // answers every later session with an equivalent signature.
  if (Cache && Specialize) {
    const SpecSig *HitSig = nullptr;
    if (std::shared_ptr<NativeCode> CachedCode = Cache->lookup(
            Info, FS.Generation, Args, NumArgs, Reclaimer, &HitSig)) {
      recordCacheHit(FS, *HitSig, Info);
      Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                       nullptr, nullptr, Callee->environment(),
                       std::move(CachedCode));
      return true;
    }
    Cache->noteMiss();
    if (Cache->entriesFor(Info) < CodeCacheSigLimit) {
      std::vector<ParamTier> Tiers = chooseTiers(Info, NumArgs);
      if (!allGenericTiers(Tiers)) {
        std::vector<Value> ArgVec(Args, Args + NumArgs);
        std::shared_ptr<NativeCode> NewCode =
            compile(Info, &ArgVec, &Tiers, nullptr, nullptr, nullptr,
                    /*ForCache=*/true);
        FS.EverSpecialized = true;
        Cache->insert(Info, FS.Generation,
                      makeSpecSig(&Tiers, Args, NumArgs), NewCode,
                      Reclaimer);
        ++Stats.NativeCalls;
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment(),
                         std::move(NewCode));
        return true;
      }
    } else {
      // Per-function signature cap: stop growing the cache for this
      // function and install a generic primary as the fallback body.
      // The cached signatures stay live — the generic-primary dispatch
      // keeps consulting them — so the hot-argument traffic still runs
      // specialized while the polymorphic tail runs generic, instead of
      // the one-binary policy's all-or-nothing despecialization.
      recordCacheEvent(TelemetryEventKind::Despecialize, Info, "sig-cap");
    }
    Specialize = false; // Nothing stable (or capped): generic primary.
  }
  if (Specialize) {
    std::vector<ParamTier> Tiers = chooseTiers(Info, NumArgs);
    if (allGenericTiers(Tiers)) {
      // The profile shows nothing stable: skip the ladder entirely.
      FS.Code = compile(Info, nullptr, nullptr, nullptr, nullptr);
    } else {
      std::vector<Value> ArgVec(Args, Args + NumArgs);
      FS.Code = compile(Info, &ArgVec, &Tiers, nullptr, nullptr);
      FS.Specialized = true;
      FS.EverSpecialized = true;
      FS.Sig = makeSpecSig(&Tiers, Args, NumArgs);
    }
  } else {
    FS.Code = compile(Info, nullptr, nullptr, nullptr, nullptr);
  }
  ++Stats.NativeCalls;
  Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false, nullptr,
                   nullptr, Callee->environment());
  return true;
}

bool Engine::onLoopHead(InterpFrame &Frame, uint32_t PC, Value &Result) {
  if (Queue)
    return onLoopHeadAsync(Frame, PC, Result);
  if (Cache)
    Reclaimer.tick();
  FunctionInfo *Info = Frame.Info;
  if (Info->BackEdgeCount < LoopThreshold)
    return false;
  FuncState &FS = state(Info);

  bool Specialize =
      Config.ParameterSpecialization && !FS.NeverSpecialize;

  if (FS.Code && FS.Code->OsrPc == PC) {
    // Existing binary has an OSR entry here; specialized code baked the
    // OSR frame values in, so revalidate them.
    if (FS.Specialized &&
        !specSigMatches(FS.OsrSig, Frame.Slots.data(), Frame.Slots.size())) {
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      if (Policy == TierPolicy::Paper) {
        FS.Cause = DespecializeCause::OsrRevalidation;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         "osr-revalidation");
        FS.Code.reset();
        FS.Specialized = false;
        // Stale *frame slots* say nothing about entry signatures: in
        // cache mode the shared entries stay valid and the function may
        // keep specializing at entry.
        if (!Cache)
          FS.NeverSpecialize = true;
        FS.Sig.clear();
        FS.OsrSig.clear();
        FS.Code = compile(Info, nullptr, nullptr, &PC, nullptr);
      } else {
        // Tiered: demote the stale frame slots one tier and rebuild the
        // OSR binary; generic only when nothing is left to assume.
        bool SawTypeMismatch = false;
        std::vector<ParamTier> SlotTiers =
            demoteTiers(Info, FS.OsrSig, Frame.Slots.data(),
                        Frame.Slots.size(), SawTypeMismatch);
        FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                   : DespecializeCause::ValueMismatch;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         despecializeCauseName(FS.Cause));
        FS.Code.reset();
        FS.Sig.clear();
        FS.OsrSig.clear();
        if (allGenericTiers(SlotTiers)) {
          ++Stats.GenericFallbacks;
          FS.Specialized = false;
          FS.NeverSpecialize = true;
          FS.Code = compile(Info, nullptr, nullptr, &PC, nullptr);
        } else {
          // Entry parameters mirror the demoted tiers of their frame
          // slots (slot I is parameter I at entry).
          std::vector<ParamTier> ParamTiers(
              SlotTiers.begin(),
              SlotTiers.begin() +
                  std::min<size_t>(Info->NumParams, SlotTiers.size()));
          std::vector<Value> ArgVec = Frame.OrigArgs;
          std::vector<Value> SlotVec = Frame.Slots;
          FS.Code =
              compile(Info, &ArgVec, &ParamTiers, &PC, &SlotVec, &SlotTiers);
          FS.Sig = makeSpecSig(&ParamTiers, ArgVec.data(), ArgVec.size());
          FS.OsrSig = makeSpecSig(&SlotTiers, SlotVec.data(), SlotVec.size());
        }
      }
    }
  } else {
    // Avoid compile storms when several hot loops alternate in one
    // function: after a few rebuilds, leave this loop to the
    // interpreter. Checked BEFORE any policy mutation: the despec
    // bookkeeping below clears FS.Specialized/FS.Sig, and bailing out
    // after that would leave a stale value-baked binary installed as if
    // it were generic — the entry dispatch would then run it without
    // signature revalidation (a real miscompile the differential fuzzer
    // caught once cache mode made nine-plus compiles per function
    // commonplace).
    if (FS.Code && FS.Compiles > 8)
      return false;
    // Compile (or recompile) with an OSR entry at this loop head.
    std::vector<ParamTier> Tiers;
    bool HaveTiers = false;
    if (FS.Specialized && FS.Code &&
        !specSigMatches(FS.Sig, Frame.OrigArgs.data(), Frame.OrigArgs.size())) {
      // The running frame's arguments differ from the cached
      // specialization.
      ++Stats.Despecializations;
      FS.EverDespecialized = true;
      if (Policy == TierPolicy::Paper) {
        FS.Cause = DespecializeCause::DifferentArgs;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         "different-args");
        FS.Specialized = false;
        // Cache mode: this one OSR body goes generic, but the shared
        // entry signatures remain valid — keep the function cacheable.
        if (!Cache)
          FS.NeverSpecialize = true;
        FS.Sig.clear();
        FS.OsrSig.clear();
        Specialize = false;
      } else {
        bool SawTypeMismatch = false;
        Tiers = demoteTiers(Info, FS.Sig, Frame.OrigArgs.data(),
                            Frame.OrigArgs.size(), SawTypeMismatch);
        HaveTiers = true;
        FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                   : DespecializeCause::ValueMismatch;
        recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                         despecializeCauseName(FS.Cause));
        FS.Specialized = false;
        FS.Sig.clear();
        FS.OsrSig.clear();
        if (allGenericTiers(Tiers)) {
          ++Stats.GenericFallbacks;
          FS.NeverSpecialize = true;
          Specialize = false;
        }
      }
    }
    FS.Code.reset();
    if (Specialize) {
      if (!HaveTiers)
        Tiers = chooseTiers(Info, Frame.OrigArgs.size());
      if (allGenericTiers(Tiers)) {
        FS.Code = compile(Info, nullptr, nullptr, &PC, nullptr);
      } else {
        std::vector<Value> ArgVec = Frame.OrigArgs;
        std::vector<Value> SlotVec = Frame.Slots;
        // Frame slots: parameters first (sharing the entry tiers), then
        // locals, which stay at the value tier until an OSR revalidation
        // demotes them.
        std::vector<ParamTier> SlotTiers(SlotVec.size(), ParamTier::Value);
        for (size_t I = 0; I != Tiers.size() && I != SlotTiers.size(); ++I)
          SlotTiers[I] = Tiers[I];
        FS.Code =
            compile(Info, &ArgVec, &Tiers, &PC, &SlotVec, &SlotTiers);
        FS.Specialized = true;
        FS.EverSpecialized = true;
        FS.Sig = makeSpecSig(&Tiers, ArgVec.data(), ArgVec.size());
        FS.OsrSig = makeSpecSig(&SlotTiers, SlotVec.data(), SlotVec.size());
      }
    } else {
      FS.Code = compile(Info, nullptr, nullptr, &PC, nullptr);
    }
  }

  if (!FS.Code || FS.Code->OsrOffset == ~0u)
    return false; // No usable OSR entry (e.g. unreachable loop head).

  ++Stats.OsrEntries;
  if (telemetryEnabled(TelOsr)) {
    TelemetryEvent E;
    E.Kind = TelemetryEventKind::OsrEntry;
    E.setFunc(Info->Name);
    E.A = PC;
    telemetry().record(E);
  }
  std::vector<Value> OsrSlots = Frame.Slots;
  Result = execute(FS, Info, Frame.ThisV, Frame.OrigArgs.data(),
                   Frame.OrigArgs.size(), /*AtOsr=*/true, &OsrSlots,
                   Frame.Env, Frame.ClosureEnv);
  return true;
}

bool Engine::onCallAsync(JSFunction *Callee, const Value &ThisV,
                         const Value *Args, size_t NumArgs, Value &Result) {
  pumpCompileQueue();
  FunctionInfo *Info = Callee->info();
  FuncState &FS = state(Info);

  // enqueueCompileTask can run a moving minor collection (it tenures the
  // task's value snapshots), which would leave the raw callee pointer
  // stale across a drain-mode retry. Keep a rooted handle and re-derive
  // at each attempt.
  TempRoots CalleeRoot(RT.heap());
  Value CalleeV = Value::function(Callee);
  CalleeRoot.add(CalleeV);

  // Drain mode retries the dispatch once after blocking on the queue so
  // compiles take effect at the same trigger points as the synchronous
  // pipeline (deterministic for differential testing).
  for (int Attempt = 0;; ++Attempt) {
    Callee = CalleeV.asFunction();
    if (FS.Code) {
      if (!FS.Specialized) {
        // Generic primary: prefer a matching specialized body from the
        // shared cache when one exists.
        if (Cache && Config.ParameterSpecialization && !FS.NeverSpecialize) {
          const SpecSig *HitSig = nullptr;
          if (std::shared_ptr<NativeCode> CachedCode = Cache->lookup(
                  Info, FS.Generation, Args, NumArgs, Reclaimer, &HitSig)) {
            recordCacheHit(FS, *HitSig, Info);
            Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                             nullptr, nullptr, Callee->environment(),
                             std::move(CachedCode));
            return true;
          }
        }
        ++Stats.NativeCalls;
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment());
        return true;
      }
      if (specSigMatches(FS.Sig, Args, NumArgs)) {
        recordCacheHit(FS, FS.Sig, Info);
        Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                         nullptr, nullptr, Callee->environment());
        return true;
      }
      for (auto &[Sig, CachedCode] : FS.ExtraSpecializations) {
        if (specSigMatches(Sig, Args, NumArgs)) {
          recordCacheHit(FS, Sig, Info);
          Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                           nullptr, nullptr, Callee->environment(),
                           CachedCode);
          return true;
        }
      }
      // Shared-cache secondary dispatch (mirrors the synchronous path):
      // hit → run it; miss with signature headroom → queue a cache-bound
      // specialized compile instead of despecializing.
      if (Cache) {
        const SpecSig *HitSig = nullptr;
        if (std::shared_ptr<NativeCode> CachedCode = Cache->lookup(
                Info, FS.Generation, Args, NumArgs, Reclaimer, &HitSig)) {
          recordCacheHit(FS, *HitSig, Info);
          Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                           nullptr, nullptr, Callee->environment(),
                           std::move(CachedCode));
          return true;
        }
      }
      if (!FS.CompilePending) {
        if (FS.ExtraSpecializations.size() + 1 < CacheDepth) {
          // Cache-depth fill (non-default config): compile synchronously.
          // Extra slots are additive — there is no stale body whose
          // replacement latency a background compile would hide.
          std::vector<Value> ArgVec(Args, Args + NumArgs);
          std::vector<ParamTier> Tiers = chooseTiers(Info, NumArgs);
          std::shared_ptr<NativeCode> NewCode =
              compile(Info, &ArgVec, &Tiers, nullptr, nullptr);
          FS.ExtraSpecializations.emplace_back(makeSpecSig(&Tiers, Args, NumArgs),
                                               NewCode);
          ++Stats.NativeCalls;
          Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                           nullptr, nullptr, Callee->environment(), NewCode);
          return true;
        }
        if (Cache && Config.ParameterSpecialization && !FS.NeverSpecialize &&
            Cache->entriesFor(Info) < CodeCacheSigLimit) {
          // Grow the shared cache: the caller interprets while the
          // cache-bound body compiles (drain mode retries below and
          // hits the fresh entry).
          Cache->noteMiss();
          auto Task = std::make_unique<CompileTask>();
          Task->Priority = CompilePriority::Recompile;
          Task->Specialized = true;
          Task->SpecArgs.assign(Args, Args + NumArgs);
          Task->ChooseTiersOnWorker = Policy == TierPolicy::Tiered;
          Task->ForCodeCache = true;
          enqueueCompileTask(Info, FS, std::move(Task));
          if (CompileDrainMode && FS.CompilePending && Attempt == 0) {
            drainCompiles();
            continue;
          }
          ++Stats.InterpretedCalls;
          return false;
        }
        // Specialization miss: make the policy decision now, but keep
        // the stale body linked until its replacement publishes —
        // matching calls still hit it; mismatching calls interpret.
        if (Cache)
          Cache->noteMiss();
        ++Stats.Despecializations;
        FS.EverDespecialized = true;
        ++FS.Generation;
        if (Cache)
          Cache->invalidate(Info, Reclaimer);
        auto Task = std::make_unique<CompileTask>();
        Task->Priority = CompilePriority::Recompile;
        if (Policy == TierPolicy::Paper) {
          FS.Cause = DespecializeCause::DifferentArgs;
          recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                           "different-args");
          FS.NeverSpecialize = true;
        } else {
          bool SawTypeMismatch = false;
          std::vector<ParamTier> NewTiers =
              demoteTiers(Info, FS.Sig, Args, NumArgs, SawTypeMismatch);
          FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                     : DespecializeCause::ValueMismatch;
          recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                           despecializeCauseName(FS.Cause));
          if (allGenericTiers(NewTiers)) {
            ++Stats.GenericFallbacks;
            FS.NeverSpecialize = true;
          } else {
            Task->Specialized = true;
            Task->SpecArgs.assign(Args, Args + NumArgs);
            Task->HaveTiers = true;
            Task->Tiers = std::move(NewTiers);
          }
        }
        enqueueCompileTask(Info, FS, std::move(Task));
      }
    } else {
      if (Info->CallCount < CallThreshold) {
        ++Stats.InterpretedCalls;
        return false;
      }
      // No primary yet: in cache mode the shared cache is the entry
      // dispatch — an earlier session's body may already fit.
      if (Cache && Config.ParameterSpecialization && !FS.NeverSpecialize) {
        const SpecSig *HitSig = nullptr;
        if (std::shared_ptr<NativeCode> CachedCode = Cache->lookup(
                Info, FS.Generation, Args, NumArgs, Reclaimer, &HitSig)) {
          recordCacheHit(FS, *HitSig, Info);
          Result = execute(FS, Info, ThisV, Args, NumArgs, /*AtOsr=*/false,
                           nullptr, nullptr, Callee->environment(),
                           std::move(CachedCode));
          return true;
        }
      }
      if (!FS.CompilePending) {
        bool Specialize =
            Config.ParameterSpecialization && !FS.NeverSpecialize;
        if (Specialize && Cache &&
            Cache->entriesFor(Info) >= CodeCacheSigLimit) {
          // Per-function signature cap (see the synchronous path): the
          // polymorphic tail gets a generic primary while the cached
          // signatures keep serving the hot-argument traffic.
          recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                           "sig-cap");
          Specialize = false;
        }
        auto Task = std::make_unique<CompileTask>();
        // A function that already had a binary (bailout discard) is
        // interpreting right now; its recompile outranks first compiles.
        Task->Priority = FS.Compiles ? CompilePriority::Recompile
                                     : CompilePriority::FirstCompile;
        if (Specialize) {
          Task->Specialized = true;
          Task->SpecArgs.assign(Args, Args + NumArgs);
          Task->ChooseTiersOnWorker = Policy == TierPolicy::Tiered;
          if (Cache) {
            // Route the specialized body into the shared cache (misses
            // are counted per compile decision, not per waiting call).
            Cache->noteMiss();
            Task->ForCodeCache = true;
          }
        }
        enqueueCompileTask(Info, FS, std::move(Task));
      }
    }
    if (CompileDrainMode && FS.CompilePending && Attempt == 0) {
      drainCompiles();
      continue;
    }
    ++Stats.InterpretedCalls;
    return false;
  }
}

bool Engine::onLoopHeadAsync(InterpFrame &Frame, uint32_t PC, Value &Result) {
  pumpCompileQueue();
  FunctionInfo *Info = Frame.Info;
  if (Info->BackEdgeCount < LoopThreshold)
    return false;
  FuncState &FS = state(Info);

  for (int Attempt = 0;; ++Attempt) {
    if (FS.Code && FS.Code->OsrPc == PC) {
      if (FS.Specialized &&
          !specSigMatches(FS.OsrSig, Frame.Slots.data(), Frame.Slots.size())) {
        // OSR revalidation miss. Decide the policy response once, queue
        // the replacement, and keep interpreting the loop until it
        // publishes (the stale body stays linked for entry calls whose
        // arguments still match).
        if (!FS.CompilePending) {
          ++Stats.Despecializations;
          FS.EverDespecialized = true;
          ++FS.Generation;
          if (Cache)
            Cache->invalidate(Info, Reclaimer);
          auto Task = std::make_unique<CompileTask>();
          Task->Priority = CompilePriority::Recompile;
          Task->IsOsr = true;
          Task->HasOsr = true;
          Task->OsrPc = PC;
          if (Policy == TierPolicy::Paper) {
            FS.Cause = DespecializeCause::OsrRevalidation;
            recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                             "osr-revalidation");
            // Cache mode: stale frame slots invalidate this OSR body,
            // not the function's future entry specializations.
            if (!Cache)
              FS.NeverSpecialize = true;
          } else {
            bool SawTypeMismatch = false;
            std::vector<ParamTier> SlotTiers =
                demoteTiers(Info, FS.OsrSig, Frame.Slots.data(),
                            Frame.Slots.size(), SawTypeMismatch);
            FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                       : DespecializeCause::ValueMismatch;
            recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                             despecializeCauseName(FS.Cause));
            if (allGenericTiers(SlotTiers)) {
              ++Stats.GenericFallbacks;
              FS.NeverSpecialize = true;
            } else {
              std::vector<ParamTier> EntryTiers(
                  SlotTiers.begin(),
                  SlotTiers.begin() +
                      std::min<size_t>(Info->NumParams, SlotTiers.size()));
              Task->Specialized = true;
              Task->SpecArgs = Frame.OrigArgs;
              Task->HaveTiers = true;
              Task->Tiers = std::move(EntryTiers);
              Task->OsrSlots = Frame.Slots;
              Task->HaveOsrTiers = true;
              Task->OsrTiers = std::move(SlotTiers);
            }
          }
          enqueueCompileTask(Info, FS, std::move(Task));
        }
        if (CompileDrainMode && FS.CompilePending && Attempt == 0) {
          drainCompiles();
          continue;
        }
        return false; // Stale OSR body is not enterable with these slots.
      }
    } else {
      // No binary serves this loop head yet.
      if (!FS.CompilePending) {
        // Same compile-storm guard as the synchronous path, same
        // ordering: before the despec bookkeeping, so a storm-bound
        // function neither re-counts despecializations on every loop
        // head nor mutates policy state for a compile that will never
        // be enqueued.
        if (FS.Code && FS.Compiles > 8)
          return false;
        bool Specialize =
            Config.ParameterSpecialization && !FS.NeverSpecialize;
        bool HaveTiers = false;
        std::vector<ParamTier> Tiers;
        if (FS.Specialized && FS.Code &&
            !specSigMatches(FS.Sig, Frame.OrigArgs.data(),
                        Frame.OrigArgs.size())) {
          // The running frame's arguments differ from the cached
          // specialization (mirrors the synchronous loop-head despec).
          ++Stats.Despecializations;
          FS.EverDespecialized = true;
          ++FS.Generation;
          if (Cache)
            Cache->invalidate(Info, Reclaimer);
          if (Policy == TierPolicy::Paper) {
            FS.Cause = DespecializeCause::DifferentArgs;
            recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                             "different-args");
            // Cache mode: this OSR body goes generic without poisoning
            // future entry specializations.
            if (!Cache)
              FS.NeverSpecialize = true;
            Specialize = false;
          } else {
            bool SawTypeMismatch = false;
            Tiers = demoteTiers(Info, FS.Sig, Frame.OrigArgs.data(),
                                Frame.OrigArgs.size(), SawTypeMismatch);
            HaveTiers = true;
            FS.Cause = SawTypeMismatch ? DespecializeCause::TypeMismatch
                                       : DespecializeCause::ValueMismatch;
            recordCacheEvent(TelemetryEventKind::Despecialize, Info,
                             despecializeCauseName(FS.Cause));
            if (allGenericTiers(Tiers)) {
              ++Stats.GenericFallbacks;
              FS.NeverSpecialize = true;
              Specialize = false;
            }
          }
        }
        auto Task = std::make_unique<CompileTask>();
        Task->Priority = FS.Code ? CompilePriority::Recompile
                                 : CompilePriority::FirstCompile;
        Task->IsOsr = true;
        Task->HasOsr = true;
        Task->OsrPc = PC;
        if (Specialize) {
          Task->Specialized = true;
          Task->SpecArgs = Frame.OrigArgs;
          Task->OsrSlots = Frame.Slots;
          if (HaveTiers) {
            Task->HaveTiers = true;
            Task->Tiers = std::move(Tiers);
          } else {
            Task->ChooseTiersOnWorker = Policy == TierPolicy::Tiered;
          }
          // OSR slot tiers are derived on the worker (parameters share
          // the entry tiers, locals stay value-tier), the same shape
          // the synchronous path builds.
        }
        enqueueCompileTask(Info, FS, std::move(Task));
      }
      if (CompileDrainMode && FS.CompilePending && Attempt == 0) {
        drainCompiles();
        continue;
      }
      if (!FS.Code || FS.Code->OsrPc != PC)
        return false;
    }
    // An installed binary serves this loop head: enter if it has a
    // usable OSR entry and (when specialized) the live slots match.
    if (!FS.Code || FS.Code->OsrPc != PC || FS.Code->OsrOffset == ~0u)
      return false;
    if (FS.Specialized &&
        !specSigMatches(FS.OsrSig, Frame.Slots.data(), Frame.Slots.size()))
      return false; // Slots moved on while the compile was in flight.
    ++Stats.OsrEntries;
    if (telemetryEnabled(TelOsr)) {
      TelemetryEvent E;
      E.Kind = TelemetryEventKind::OsrEntry;
      E.setFunc(Info->Name);
      E.A = PC;
      telemetry().record(E);
    }
    std::vector<Value> OsrSlots = Frame.Slots;
    Result = execute(FS, Info, Frame.ThisV, Frame.OrigArgs.data(),
                     Frame.OrigArgs.size(), /*AtOsr=*/true, &OsrSlots,
                     Frame.Env, Frame.ClosureEnv);
    return true;
  }
}

std::vector<Engine::FunctionReport> Engine::functionReports() const {
  std::vector<FunctionReport> Out;
  for (const auto &[Info, FS] : States) {
    FunctionReport R;
    R.Name = Info->Name;
    R.WasSpecialized = FS.EverSpecialized;
    R.Despecialized = FS.EverDespecialized;
    R.Cause = FS.Cause;
    R.Compiles = FS.Compiles;
    R.CompileSeconds = FS.CompileSeconds;
    R.NativeRuns = FS.NativeRuns;
    R.Bailouts = FS.TotalBailouts;
    R.TierTransitions = FS.TierTransitions;
    R.CacheHits = FS.CacheHits;
    R.ValueTierHits = FS.ValueTierHits;
    R.TypeTierHits = FS.TypeTierHits;
    R.MinCodeSize = FS.MinCodeSize;
    R.MinCodeSizePostFusion = FS.MinCodeSizePostFusion;
    R.FusedOps = FS.FusedOps;
    Out.push_back(std::move(R));
  }
  return Out;
}

void Engine::publishMetrics() {
  if (MetricsPublished)
    return;
  MetricsPublished = true;
  Metrics &M = metrics();

  M.addCounter("engine.compilations", Stats.Compilations);
  M.addCounter("engine.recompilations", Stats.Recompilations);
  M.addCounter("engine.compiles.specialized", Stats.SpecializedCompiles);
  M.addCounter("engine.compiles.generic", Stats.GenericCompiles);
  M.addCounter("engine.despecializations", Stats.Despecializations);
  M.addCounter("engine.cache_hits", Stats.CacheHits);
  M.addCounter("engine.cache_hits.value_tier", Stats.ValueTierHits);
  M.addCounter("engine.cache_hits.type_tier", Stats.TypeTierHits);
  M.addCounter("engine.tier_demotions.value_to_type",
               Stats.TierDemotionsValueToType);
  M.addCounter("engine.tier_demotions.to_generic",
               Stats.TierDemotionsToGeneric);
  M.addCounter("engine.generic_fallbacks", Stats.GenericFallbacks);
  M.addCounter("engine.bailouts", Stats.Bailouts);
  for (size_t I = 0; I != NumBailoutReasons; ++I)
    if (Stats.BailoutsByReason[I])
      M.addCounter(std::string("engine.bailouts.") +
                       bailoutReasonName(static_cast<BailoutReason>(I)),
                   Stats.BailoutsByReason[I]);
  M.addCounter("engine.osr_entries", Stats.OsrEntries);
  M.addCounter("engine.calls.native", Stats.NativeCalls);
  M.addCounter("engine.calls.interpreted", Stats.InterpretedCalls);
  M.addCounter("engine.fused_ops", Stats.FusedOps);
  M.setGauge("engine.compile_seconds", Stats.CompileSeconds);
  M.setGauge("engine.compile_stall_seconds", Stats.CompileStallSeconds);
  if (Queue) {
    CompileQueue::Counters QC = Queue->counters();
    M.addCounter("engine.compile_queue.enqueued", QC.Enqueued);
    M.addCounter("engine.compile_queue.coalesced", QC.Coalesced);
    M.addCounter("engine.compile_queue.rejected_full", QC.RejectedFull);
    M.addCounter("engine.compile_queue.compiled", QC.Compiled);
    M.addCounter("engine.compile_queue.dropped_at_shutdown",
                 QC.DroppedAtShutdown);
    M.setGauge("engine.compile_queue.depth",
               static_cast<double>(Queue->depth()));
  }
  if (Cache) {
    const CodeCache::Stats &CS = Cache->stats();
    M.addCounter("engine.code_cache.hits", CS.Hits);
    M.addCounter("engine.code_cache.misses", CS.Misses);
    M.addCounter("engine.code_cache.insertions", CS.Insertions);
    M.addCounter("engine.code_cache.evictions", CS.Evictions);
    M.addCounter("engine.code_cache.invalidations", CS.Invalidations);
    M.addCounter("engine.code_cache.stale_generation_drops",
                 CS.StaleGenerationDrops);
    M.addCounter("engine.code_cache.rejected_oversize", CS.RejectedOversize);
    M.setGauge("engine.code_cache.resident_bytes",
               static_cast<double>(Cache->residentBytes()));
    M.setGauge("engine.code_cache.budget_bytes",
               static_cast<double>(Cache->budgetBytes()));
    M.setGauge("engine.code_cache.entries",
               static_cast<double>(Cache->size()));
  }

  for (const FunctionReport &R : functionReports()) {
    Metrics::FunctionMetrics FM;
    FM.NativeRuns = R.NativeRuns;
    FM.Compiles = R.Compiles;
    FM.CompileNs = static_cast<uint64_t>(R.CompileSeconds * 1e9);
    FM.Bailouts = R.Bailouts;
    FM.CacheHits = R.CacheHits;
    FM.TierTransitions = R.TierTransitions;
    FM.Despecializations = R.Despecialized ? 1 : 0;
    M.mergeFunction(R.Name, FM);
  }
}

NativeCode *Engine::compileNow(FunctionInfo *Info,
                               const std::vector<Value> *Args,
                               const std::vector<ParamTier> *Tiers) {
  FuncState &FS = state(Info);
  FS.Code = compile(Info, Args, Args ? Tiers : nullptr, nullptr, nullptr);
  FS.Specialized = Args != nullptr;
  if (Args)
    FS.Sig = makeSpecSig(Tiers, Args->data(), Args->size());
  return FS.Code.get();
}
