//===- serve/SessionWorkload.h - Multi-session serving workload -*- C++ -*-===//
///
/// \file
/// The workload model of the serving harness: one "site bundle" — a
/// MiniJS program defining the function population and GC-rooted
/// argument pools of a synthetic web application — shared by every
/// session, plus a per-session stream of call events replayed against
/// it. The distributions mirror profiling/WebSession.h (Zipf function
/// popularity, a dominant argument per function matching the paper's
/// 59.91% monomorphic-call share), but where WebSession bakes the call
/// sequence into the program text, here the calls are driven from C++
/// so tens of thousands of *distinct* sessions can share one long-lived
/// Engine — the scenario the shared SpecSig code cache (jit/CodeCache.h)
/// exists for: session N hits a specialized body compiled for session
/// N-k with the same signature.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_SERVE_SESSIONWORKLOAD_H
#define JITVS_SERVE_SESSIONWORKLOAD_H

#include "support/RNG.h"

#include <cstdint>
#include <string>
#include <vector>

namespace jitvs {

/// Tunables of the synthetic site. Defaults keep a 10k-session run in
/// seconds while still forcing compiles, cache reuse and (under a small
/// budget) eviction.
struct ServeModel {
  /// Distinct user functions the site bundle defines.
  unsigned NumFunctions = 96;
  /// Distinct values per argument pool (the per-kind value universe).
  unsigned PoolSize = 32;
  /// Zipf exponent of site-wide function popularity: most traffic
  /// concentrates on a hot head, as in the paper's Figure 1.
  double FuncZipfAlpha = 1.1;
  /// Probability a call uses its function's site-wide dominant argument
  /// (the paper's 59.91% same-arguments share).
  double MonomorphicShare = 0.60;
  /// Requests per session; one request is the harness's scheduling and
  /// latency-accounting unit.
  unsigned RequestsPerSession = 4;
  /// Function calls per request.
  unsigned CallsPerRequest = 8;
};

/// One call the harness replays: `drive(Func, Arg)` in the bundle.
struct CallEvent {
  uint32_t Func = 0;
  uint32_t Arg = 0;
};

/// The generated site: MiniJS source plus the sampling tables sessions
/// draw their traffic from.
struct SiteBundle {
  std::string Source;
  /// Site-wide dominant argument index per function (what the
  /// monomorphic share of calls passes).
  std::vector<uint32_t> DominantArg;
  /// CDF over functions (Zipf popularity), for sampleFunc.
  std::vector<double> FuncCdf;
  unsigned PoolSize = 0;

  /// Samples a function index by site-wide popularity.
  uint32_t sampleFunc(RNG &Rand) const;
};

/// Builds the site bundle for \p Model. Deterministic in \p Seed.
SiteBundle buildSiteBundle(const ServeModel &Model, uint64_t Seed);

/// Generates one session's call stream (RequestsPerSession *
/// CallsPerRequest events) against \p Site. Deterministic in the state
/// of \p Rand, so seeding it from a session id reproduces the session.
std::vector<CallEvent> generateSession(const SiteBundle &Site,
                                       const ServeModel &Model, RNG &Rand);

} // namespace jitvs

#endif // JITVS_SERVE_SESSIONWORKLOAD_H
