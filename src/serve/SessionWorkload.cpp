//===- serve/SessionWorkload.cpp - Multi-session serving workload ---------===//

#include "serve/SessionWorkload.h"

#include <cmath>
#include <cstdio>

using namespace jitvs;

uint32_t SiteBundle::sampleFunc(RNG &Rand) const {
  double U = Rand.nextDouble();
  size_t Lo = 0, Hi = FuncCdf.size() - 1;
  while (Lo < Hi) {
    size_t Mid = (Lo + Hi) / 2;
    if (FuncCdf[Mid] < U)
      Lo = Mid + 1;
    else
      Hi = Mid;
  }
  return static_cast<uint32_t>(Lo);
}

namespace {

/// Parameter kind of function \p F: integers dominate (the
/// specialization-friendliest tier), with a double and string minority
/// so the cache holds mixed-tag signatures.
enum class Kind { Int, Dbl, Str };

Kind kindOf(unsigned F) {
  switch (F % 4) {
  case 2:
    return Kind::Dbl;
  case 3:
    return Kind::Str;
  default:
    return Kind::Int;
  }
}

const char *poolOf(Kind K) {
  switch (K) {
  case Kind::Int:
    return "pool_int";
  case Kind::Dbl:
    return "pool_dbl";
  case Kind::Str:
    return "pool_str";
  }
  return "pool_int";
}

} // namespace

SiteBundle jitvs::buildSiteBundle(const ServeModel &Model, uint64_t Seed) {
  RNG Rand(Seed);
  SiteBundle Site;
  Site.PoolSize = Model.PoolSize;
  Site.Source.reserve(1 << 16);
  char Buf[192];
  std::string &Out = Site.Source;

  // Argument pools: stable, GC-rooted (MiniJS globals) value universes.
  // Stability is the point — the same pool entry passed by two sessions
  // is the same Value, so value-tier signatures match across sessions.
  Out += "var pool_int = [];\n"
         "var pool_dbl = [];\n"
         "var pool_str = [];\n";
  std::snprintf(Buf, sizeof(Buf), "for (var i = 0; i < %u; i++) {\n",
                Model.PoolSize);
  Out += Buf;
  Out += "  pool_int.push(i * 7 + 3);\n"
         "  pool_dbl.push(i + 0.25);\n"
         "  pool_str.push('u' + i);\n"
         "}\n"
         "var sink = 0;\n";

  // Function population. Bodies vary in size (the trailing statement
  // run) so cost-aware LRU eviction has real byte differences to weigh.
  for (unsigned F = 0; F != Model.NumFunctions; ++F) {
    unsigned Extra = F % 7;
    switch (kindOf(F)) {
    case Kind::Int:
      std::snprintf(Buf, sizeof(Buf),
                    "function sf%u(p) { var t = (p * 3 + %u) | 0;"
                    " t = (t ^ (p << 1)) | 0;",
                    F, F);
      Out += Buf;
      for (unsigned E = 0; E != Extra; ++E) {
        std::snprintf(Buf, sizeof(Buf), " t = (t + (p * %u)) | 0;", E + 2);
        Out += Buf;
      }
      Out += " return t; }\n";
      break;
    case Kind::Dbl:
      std::snprintf(Buf, sizeof(Buf),
                    "function sf%u(p) { var t = p * 1.5 + %u;", F, F);
      Out += Buf;
      for (unsigned E = 0; E != Extra; ++E) {
        std::snprintf(Buf, sizeof(Buf), " t = t + p * %u.25;", E + 1);
        Out += Buf;
      }
      Out += " return t; }\n";
      break;
    case Kind::Str:
      std::snprintf(Buf, sizeof(Buf),
                    "function sf%u(p) { var t = p + 'x%u'; return t; }\n", F,
                    F);
      Out += Buf;
      break;
    }
  }

  // Dispatch tables + the single entry point the harness calls. drive
  // itself goes polymorphic immediately (f and a churn), so under every
  // policy it settles on a generic binary; the interesting dispatch is
  // the inner fns[f](...) call, which reaches Engine::onCall with the
  // pool value as the argument.
  Out += "var fns = [";
  for (unsigned F = 0; F != Model.NumFunctions; ++F) {
    if (F)
      Out += ", ";
    std::snprintf(Buf, sizeof(Buf), "sf%u", F);
    Out += Buf;
  }
  Out += "];\n";
  Out += "var fargs = [";
  for (unsigned F = 0; F != Model.NumFunctions; ++F) {
    if (F)
      Out += ", ";
    Out += poolOf(kindOf(F));
  }
  Out += "];\n";
  Out += "function drive(f, a) { sink = sink + 1;"
         " return fns[f](fargs[f][a]); }\n";

  // Site-wide dominant argument per function.
  Site.DominantArg.resize(Model.NumFunctions);
  for (unsigned F = 0; F != Model.NumFunctions; ++F)
    Site.DominantArg[F] =
        static_cast<uint32_t>(Rand.nextBelow(Model.PoolSize));

  // Zipf popularity CDF (function 0 is the site's hottest endpoint).
  Site.FuncCdf.resize(Model.NumFunctions);
  double Sum = 0.0;
  for (unsigned F = 0; F != Model.NumFunctions; ++F) {
    Sum += 1.0 / std::pow(static_cast<double>(F + 1), Model.FuncZipfAlpha);
    Site.FuncCdf[F] = Sum;
  }
  for (double &C : Site.FuncCdf)
    C /= Sum;

  return Site;
}

std::vector<CallEvent> jitvs::generateSession(const SiteBundle &Site,
                                              const ServeModel &Model,
                                              RNG &Rand) {
  std::vector<CallEvent> Events;
  Events.reserve(static_cast<size_t>(Model.RequestsPerSession) *
                 Model.CallsPerRequest);
  for (unsigned R = 0; R != Model.RequestsPerSession; ++R) {
    for (unsigned C = 0; C != Model.CallsPerRequest; ++C) {
      CallEvent E;
      E.Func = Site.sampleFunc(Rand);
      if (Rand.nextDouble() < Model.MonomorphicShare)
        E.Arg = Site.DominantArg[E.Func];
      else
        E.Arg = static_cast<uint32_t>(Rand.nextBelow(Site.PoolSize));
      Events.push_back(E);
    }
  }
  return Events;
}
