//===- serve/ServeHarness.cpp - Long-lived-engine session replayer --------===//

#include "serve/ServeHarness.h"

#include "support/Timer.h"
#include "vm/Runtime.h"

#include <algorithm>
#include <cmath>

using namespace jitvs;

double jitvs::percentileSorted(const std::vector<double> &Sorted, double P) {
  if (Sorted.empty())
    return 0.0;
  // Nearest-rank: ceil(P/100 * N)-th smallest (1-based).
  double Rank = std::ceil(P / 100.0 * static_cast<double>(Sorted.size()));
  size_t Idx = static_cast<size_t>(std::max(1.0, Rank)) - 1;
  return Sorted[std::min(Idx, Sorted.size() - 1)];
}

namespace {

/// One live session in the round-robin window.
struct LiveSession {
  std::vector<CallEvent> Events;
  size_t Next = 0;
  double LatencySeconds = 0.0;
};

/// Deterministic per-session stream: session \p Id always replays the
/// same calls regardless of window width or admission order.
std::vector<CallEvent> sessionEvents(const SiteBundle &Site,
                                     const ServeModel &Model, uint64_t Seed,
                                     uint64_t Id) {
  RNG Rand(Seed * 1000003ull + Id * 2654435761ull + 1);
  return generateSession(Site, Model, Rand);
}

} // namespace

ServeResult jitvs::runServe(const ServeOptions &Opts, const OptConfig &Config,
                            const EngineKnobs &Knobs) {
  ServeResult Res;
  SiteBundle Site = buildSiteBundle(Opts.Model, Opts.Seed);

  Runtime RT;
  Engine E(RT, Config, Knobs);
  RT.evaluate(Site.Source);
  if (RT.hasError()) {
    ++Res.Errors;
    return Res;
  }

  const unsigned Window =
      std::max(1u, std::min(Opts.Concurrency, Opts.Sessions));
  std::vector<LiveSession> Live(Window);
  uint64_t Admitted = 0;
  for (LiveSession &S : Live)
    S.Events = sessionEvents(Site, Opts.Model, Opts.Seed, Admitted++);

  std::vector<double> Latencies;
  Latencies.reserve(Opts.Sessions);
  std::vector<Value> Args(2);
  uint64_t DepthSamples = 0;
  double DepthSum = 0.0;

  Timer Total;
  uint64_t Completed = 0;
  while (Completed < Opts.Sessions) {
    for (LiveSession &S : Live) {
      if (Completed >= Opts.Sessions)
        break;
      if (S.Next >= S.Events.size())
        continue; // Window wider than the remaining tail.
      // Serve one request: CallsPerRequest calls, timed as a unit.
      size_t End = std::min(S.Next + Opts.Model.CallsPerRequest,
                            S.Events.size());
      Timer Req;
      for (; S.Next != End; ++S.Next) {
        const CallEvent &Ev = S.Events[S.Next];
        Args[0] = Value::int32(static_cast<int32_t>(Ev.Func));
        Args[1] = Value::int32(static_cast<int32_t>(Ev.Arg));
        RT.callGlobal("drive", Args);
        ++Res.Calls;
        if (RT.hasError()) {
          ++Res.Errors;
          RT.clearError();
        }
      }
      S.LatencySeconds += Req.seconds();
      size_t Depth = E.pendingCompiles();
      Res.MaxQueueDepth = std::max(Res.MaxQueueDepth, Depth);
      DepthSum += static_cast<double>(Depth);
      ++DepthSamples;

      if (S.Next >= S.Events.size()) {
        Latencies.push_back(S.LatencySeconds);
        ++Completed;
        if (Admitted < Opts.Sessions) {
          S.Events = sessionEvents(Site, Opts.Model, Opts.Seed, Admitted++);
          S.Next = 0;
          S.LatencySeconds = 0.0;
        }
      }
    }
  }
  E.drainCompiles();
  Res.TotalSeconds = Total.seconds();

  Res.Sessions = Completed;
  std::sort(Latencies.begin(), Latencies.end());
  Res.P50Seconds = percentileSorted(Latencies, 50.0);
  Res.P99Seconds = percentileSorted(Latencies, 99.0);
  double Sum = 0.0;
  for (double L : Latencies)
    Sum += L;
  Res.MeanSeconds = Latencies.empty() ? 0.0 : Sum / Latencies.size();
  Res.MeanQueueDepth =
      DepthSamples ? DepthSum / static_cast<double>(DepthSamples) : 0.0;

  if (const CodeCache *Cache = E.codeCache()) {
    Res.CacheEnabled = true;
    Res.Cache = Cache->stats();
    uint64_t Looked = Res.Cache.Hits + Res.Cache.Misses;
    Res.CacheHitRate =
        Looked ? static_cast<double>(Res.Cache.Hits) / Looked : 0.0;
    Res.ResidentCodeBytes = Cache->residentBytes();
    Res.CacheBudgetBytes = Cache->budgetBytes();
    Res.CacheEntries = Cache->size();
  }
  Res.Engine = E.stats();
  return Res;
}
