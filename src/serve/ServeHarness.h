//===- serve/ServeHarness.h - Long-lived-engine session replayer -*- C++ -*-===//
///
/// \file
/// Replays tens of thousands of synthetic user sessions
/// (serve/SessionWorkload.h) against ONE long-lived Runtime + Engine —
/// the server-side-JS deployment shape, as opposed to the one-page-load
/// lifetime the paper measured. A fixed-size window of sessions is
/// live at any moment; the scheduler interleaves them round-robin, one
/// request per turn, so compiled code, profile state and the shared
/// SpecSig code cache (jit/CodeCache.h) all carry over from session to
/// session exactly as they would in a real serving process.
///
/// Reported per run: p50/p99/mean session latency (a session's latency
/// is the sum of its requests' service times), compile-queue depth
/// (max + mean, sampled once per request), and — when the cache is on —
/// hit/miss/eviction counters plus resident code bytes.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_SERVE_SERVEHARNESS_H
#define JITVS_SERVE_SERVEHARNESS_H

#include "jit/CodeCache.h"
#include "jit/Engine.h"
#include "serve/SessionWorkload.h"

#include <cstdint>

namespace jitvs {

struct ServeOptions {
  ServeModel Model;
  /// Total sessions replayed (the acceptance floor is 10k).
  unsigned Sessions = 10000;
  /// Concurrently live sessions (the round-robin window width).
  unsigned Concurrency = 64;
  uint64_t Seed = 1;
};

struct ServeResult {
  uint64_t Sessions = 0;
  uint64_t Calls = 0;
  /// Runtime errors surfaced by session calls (must be 0; a non-zero
  /// count means the bundle or the engine miscompiled).
  uint64_t Errors = 0;

  double TotalSeconds = 0.0;
  double P50Seconds = 0.0;
  double P99Seconds = 0.0;
  double MeanSeconds = 0.0;

  size_t MaxQueueDepth = 0;
  double MeanQueueDepth = 0.0;

  bool CacheEnabled = false;
  CodeCache::Stats Cache;
  /// Hits / (Hits + Misses); 0 when the cache is off or idle.
  double CacheHitRate = 0.0;
  size_t ResidentCodeBytes = 0;
  size_t CacheBudgetBytes = 0;
  size_t CacheEntries = 0;

  EngineStats Engine;
};

/// Runs one serving experiment: builds the site bundle, constructs a
/// Runtime + Engine(\p Config, \p Knobs), evaluates the bundle once,
/// then replays Opts.Sessions sessions through the round-robin window.
/// Deterministic in Opts.Seed for synchronous engines.
ServeResult runServe(const ServeOptions &Opts, const OptConfig &Config,
                     const EngineKnobs &Knobs);

/// Sorted-percentile helper (nearest-rank; \p P in [0, 100]). Exposed
/// for the unit tests.
double percentileSorted(const std::vector<double> &Sorted, double P);

} // namespace jitvs

#endif // JITVS_SERVE_SERVEHARNESS_H
