//===- parser/Lexer.h - MiniJS tokenizer ------------------------*- C++ -*-===//
///
/// \file
/// Tokenizer for the MiniJS language: the JavaScript subset used by the
/// workloads (numbers with int/double/hex literals, strings, the full C
/// operator set plus ===/!==/>>>/typeof, and JS keywords).
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_PARSER_LEXER_H
#define JITVS_PARSER_LEXER_H

#include <cstdint>
#include <string>

namespace jitvs {

enum class TokKind : uint8_t {
  Eof,
  Error,
  Identifier,
  Number,
  String,

  // Keywords.
  KwVar,
  KwFunction,
  KwIf,
  KwElse,
  KwWhile,
  KwDo,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwTrue,
  KwFalse,
  KwNull,
  KwUndefined,
  KwThis,
  KwNew,
  KwTypeof,

  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semicolon,
  Comma,
  Dot,
  Colon,
  Question,

  Assign,       // =
  PlusAssign,   // +=
  MinusAssign,  // -=
  StarAssign,   // *=
  SlashAssign,  // /=
  PercentAssign,// %=
  AmpAssign,    // &=
  PipeAssign,   // |=
  CaretAssign,  // ^=
  ShlAssign,    // <<=
  ShrAssign,    // >>=
  UShrAssign,   // >>>=

  Plus,
  Minus,
  Star,
  Slash,
  Percent,
  PlusPlus,
  MinusMinus,

  Amp,
  Pipe,
  Caret,
  Tilde,
  Shl,
  Shr,
  UShr,

  AmpAmp,
  PipePipe,
  Bang,

  Lt,
  Le,
  Gt,
  Ge,
  EqEq,
  NotEq,
  EqEqEq,
  NotEqEq,
};

/// A single token with its source position (for diagnostics).
struct Token {
  TokKind Kind = TokKind::Eof;
  std::string Text;    ///< Identifier spelling or string contents.
  double NumValue = 0; ///< Numeric literal value.
  bool IsIntLiteral = false;
  uint32_t Line = 0;
  uint32_t Column = 0;
};

/// Streaming tokenizer over a source buffer.
class Lexer {
public:
  explicit Lexer(std::string Source);

  /// Scans and returns the next token. On a lexical error returns a token
  /// of kind Error whose Text holds the message.
  Token next();

private:
  char peek(size_t Ahead = 0) const {
    size_t I = Pos + Ahead;
    return I < Src.size() ? Src[I] : '\0';
  }
  char advance();
  bool match(char C);
  void skipTrivia();
  Token makeToken(TokKind Kind);
  Token errorToken(const std::string &Msg);
  Token lexNumber();
  Token lexString(char Quote);
  Token lexIdentifier();

  std::string Src;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Column = 1;
  uint32_t TokLine = 1;
  uint32_t TokColumn = 1;
};

} // namespace jitvs

#endif // JITVS_PARSER_LEXER_H
