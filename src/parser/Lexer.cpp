//===- parser/Lexer.cpp - MiniJS tokenizer --------------------------------===//

#include "parser/Lexer.h"

#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace jitvs;

Lexer::Lexer(std::string Source) : Src(std::move(Source)) {}

char Lexer::advance() {
  char C = Src[Pos++];
  if (C == '\n') {
    ++Line;
    Column = 1;
  } else {
    ++Column;
  }
  return C;
}

bool Lexer::match(char C) {
  if (peek() != C)
    return false;
  advance();
  return true;
}

void Lexer::skipTrivia() {
  while (Pos < Src.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Src.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      advance();
      advance();
      while (Pos < Src.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos < Src.size()) {
        advance();
        advance();
      }
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokKind Kind) {
  Token T;
  T.Kind = Kind;
  T.Line = TokLine;
  T.Column = TokColumn;
  return T;
}

Token Lexer::errorToken(const std::string &Msg) {
  Token T = makeToken(TokKind::Error);
  T.Text = Msg;
  return T;
}

Token Lexer::lexNumber() {
  size_t Start = Pos;
  bool IsInt = true;
  if (peek() == '0' && (peek(1) == 'x' || peek(1) == 'X')) {
    advance();
    advance();
    while (std::isxdigit(static_cast<unsigned char>(peek())))
      advance();
    Token T = makeToken(TokKind::Number);
    T.NumValue = static_cast<double>(
        std::strtoull(Src.substr(Start + 2, Pos - Start - 2).c_str(), nullptr,
                      16));
    T.IsIntLiteral = true;
    return T;
  }
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    IsInt = false;
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    IsInt = false;
    advance();
    if (peek() == '+' || peek() == '-')
      advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  }
  Token T = makeToken(TokKind::Number);
  T.NumValue = std::strtod(Src.substr(Start, Pos - Start).c_str(), nullptr);
  T.IsIntLiteral = IsInt;
  return T;
}

Token Lexer::lexString(char Quote) {
  std::string Text;
  while (Pos < Src.size() && peek() != Quote) {
    char C = advance();
    if (C == '\\' && Pos < Src.size()) {
      char E = advance();
      switch (E) {
      case 'n':
        Text += '\n';
        break;
      case 't':
        Text += '\t';
        break;
      case 'r':
        Text += '\r';
        break;
      case '0':
        Text += '\0';
        break;
      case '\\':
      case '"':
      case '\'':
        Text += E;
        break;
      default:
        Text += E;
        break;
      }
      continue;
    }
    Text += C;
  }
  if (Pos >= Src.size())
    return errorToken("unterminated string literal");
  advance(); // Closing quote.
  Token T = makeToken(TokKind::String);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::lexIdentifier() {
  static const std::unordered_map<std::string, TokKind> Keywords = {
      {"var", TokKind::KwVar},           {"function", TokKind::KwFunction},
      {"if", TokKind::KwIf},             {"else", TokKind::KwElse},
      {"while", TokKind::KwWhile},       {"do", TokKind::KwDo},
      {"for", TokKind::KwFor},           {"return", TokKind::KwReturn},
      {"break", TokKind::KwBreak},       {"continue", TokKind::KwContinue},
      {"true", TokKind::KwTrue},         {"false", TokKind::KwFalse},
      {"null", TokKind::KwNull},         {"undefined", TokKind::KwUndefined},
      {"this", TokKind::KwThis},         {"new", TokKind::KwNew},
      {"typeof", TokKind::KwTypeof},
  };
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_' ||
         peek() == '$')
    advance();
  std::string Text = Src.substr(Start, Pos - Start);
  auto It = Keywords.find(Text);
  if (It != Keywords.end())
    return makeToken(It->second);
  Token T = makeToken(TokKind::Identifier);
  T.Text = std::move(Text);
  return T;
}

Token Lexer::next() {
  skipTrivia();
  TokLine = Line;
  TokColumn = Column;
  if (Pos >= Src.size())
    return makeToken(TokKind::Eof);

  char C = peek();
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_' || C == '$')
    return lexIdentifier();
  if (C == '"' || C == '\'') {
    advance();
    return lexString(C);
  }

  advance();
  switch (C) {
  case '(':
    return makeToken(TokKind::LParen);
  case ')':
    return makeToken(TokKind::RParen);
  case '{':
    return makeToken(TokKind::LBrace);
  case '}':
    return makeToken(TokKind::RBrace);
  case '[':
    return makeToken(TokKind::LBracket);
  case ']':
    return makeToken(TokKind::RBracket);
  case ';':
    return makeToken(TokKind::Semicolon);
  case ',':
    return makeToken(TokKind::Comma);
  case '.':
    return makeToken(TokKind::Dot);
  case ':':
    return makeToken(TokKind::Colon);
  case '?':
    return makeToken(TokKind::Question);
  case '+':
    if (match('+'))
      return makeToken(TokKind::PlusPlus);
    if (match('='))
      return makeToken(TokKind::PlusAssign);
    return makeToken(TokKind::Plus);
  case '-':
    if (match('-'))
      return makeToken(TokKind::MinusMinus);
    if (match('='))
      return makeToken(TokKind::MinusAssign);
    return makeToken(TokKind::Minus);
  case '*':
    if (match('='))
      return makeToken(TokKind::StarAssign);
    return makeToken(TokKind::Star);
  case '/':
    if (match('='))
      return makeToken(TokKind::SlashAssign);
    return makeToken(TokKind::Slash);
  case '%':
    if (match('='))
      return makeToken(TokKind::PercentAssign);
    return makeToken(TokKind::Percent);
  case '&':
    if (match('&'))
      return makeToken(TokKind::AmpAmp);
    if (match('='))
      return makeToken(TokKind::AmpAssign);
    return makeToken(TokKind::Amp);
  case '|':
    if (match('|'))
      return makeToken(TokKind::PipePipe);
    if (match('='))
      return makeToken(TokKind::PipeAssign);
    return makeToken(TokKind::Pipe);
  case '^':
    if (match('='))
      return makeToken(TokKind::CaretAssign);
    return makeToken(TokKind::Caret);
  case '~':
    return makeToken(TokKind::Tilde);
  case '!':
    if (match('=')) {
      if (match('='))
        return makeToken(TokKind::NotEqEq);
      return makeToken(TokKind::NotEq);
    }
    return makeToken(TokKind::Bang);
  case '=':
    if (match('=')) {
      if (match('='))
        return makeToken(TokKind::EqEqEq);
      return makeToken(TokKind::EqEq);
    }
    return makeToken(TokKind::Assign);
  case '<':
    if (match('<')) {
      if (match('='))
        return makeToken(TokKind::ShlAssign);
      return makeToken(TokKind::Shl);
    }
    if (match('='))
      return makeToken(TokKind::Le);
    return makeToken(TokKind::Lt);
  case '>':
    if (match('>')) {
      if (match('>')) {
        if (match('='))
          return makeToken(TokKind::UShrAssign);
        return makeToken(TokKind::UShr);
      }
      if (match('='))
        return makeToken(TokKind::ShrAssign);
      return makeToken(TokKind::Shr);
    }
    if (match('='))
      return makeToken(TokKind::Ge);
    return makeToken(TokKind::Gt);
  default:
    break;
  }
  return errorToken(std::string("unexpected character '") + C + "'");
}
