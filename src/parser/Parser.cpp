//===- parser/Parser.cpp - Recursive-descent MiniJS parser ----------------===//

#include "parser/Parser.h"

#include "support/Assert.h"

#include <cstdio>

using namespace jitvs;

namespace {

/// Internal parser state. On error, sets HadError and unwinds by having
/// every production check failed() after each sub-parse.
class Parser {
public:
  explicit Parser(const std::string &Source) : Lex(Source) {
    Cur = Lex.next();
    Next = Lex.next();
  }

  std::unique_ptr<ProgramNode> run(std::string &ErrorOut) {
    auto Prog = std::make_unique<ProgramNode>();
    while (!check(TokKind::Eof) && !HadError)
      Prog->Body.push_back(parseStatement());
    if (HadError) {
      ErrorOut = ErrorMsg;
      return nullptr;
    }
    return Prog;
  }

private:
  bool failed() const { return HadError; }

  void error(const std::string &Msg) {
    if (HadError)
      return;
    HadError = true;
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%u:%u: ", Cur.Line, Cur.Column);
    ErrorMsg = std::string(Buf) + Msg;
  }

  void advance() {
    if (Cur.Kind == TokKind::Error) {
      error(Cur.Text);
      return;
    }
    Cur = Next;
    Next = Lex.next();
    if (Cur.Kind == TokKind::Error)
      error(Cur.Text);
  }

  bool check(TokKind K) const { return Cur.Kind == K; }
  bool match(TokKind K) {
    if (!check(K))
      return false;
    advance();
    return true;
  }
  void expect(TokKind K, const char *What) {
    if (check(K)) {
      advance();
      return;
    }
    error(std::string("expected ") + What);
  }

  ExprPtr makeExpr(ExprKind K) {
    auto E = std::make_unique<Expr>(K);
    E->Line = Cur.Line;
    return E;
  }
  StmtPtr makeStmt(StmtKind K) {
    auto S = std::make_unique<Stmt>(K);
    S->Line = Cur.Line;
    return S;
  }
  ExprPtr errorExpr() { return std::make_unique<Expr>(ExprKind::NullLit); }
  StmtPtr errorStmt() { return std::make_unique<Stmt>(StmtKind::Empty); }

  // --- Statements ---

  StmtPtr parseStatement() {
    switch (Cur.Kind) {
    case TokKind::KwVar:
      return parseVarDecl(/*ConsumeSemicolon=*/true);
    case TokKind::KwFunction:
      return parseFuncDecl();
    case TokKind::KwIf:
      return parseIf();
    case TokKind::KwWhile:
      return parseWhile();
    case TokKind::KwDo:
      return parseDoWhile();
    case TokKind::KwFor:
      return parseFor();
    case TokKind::KwReturn:
      return parseReturn();
    case TokKind::KwBreak: {
      auto S = makeStmt(StmtKind::Break);
      advance();
      expect(TokKind::Semicolon, "';'");
      return S;
    }
    case TokKind::KwContinue: {
      auto S = makeStmt(StmtKind::Continue);
      advance();
      expect(TokKind::Semicolon, "';'");
      return S;
    }
    case TokKind::LBrace:
      return parseBlock();
    case TokKind::Semicolon: {
      auto S = makeStmt(StmtKind::Empty);
      advance();
      return S;
    }
    default: {
      auto S = makeStmt(StmtKind::Expression);
      S->E = parseExpression();
      expect(TokKind::Semicolon, "';'");
      return S;
    }
    }
  }

  StmtPtr parseVarDecl(bool ConsumeSemicolon) {
    auto S = makeStmt(StmtKind::VarDecl);
    expect(TokKind::KwVar, "'var'");
    while (!HadError) {
      if (!check(TokKind::Identifier)) {
        error("expected variable name");
        return errorStmt();
      }
      S->Names.push_back(Cur.Text);
      advance();
      if (match(TokKind::Assign))
        S->Inits.push_back(parseAssignment());
      else
        S->Inits.push_back(nullptr);
      if (!match(TokKind::Comma))
        break;
    }
    S->Refs.resize(S->Names.size());
    if (ConsumeSemicolon)
      expect(TokKind::Semicolon, "';'");
    return S;
  }

  StmtPtr parseFuncDecl() {
    auto S = makeStmt(StmtKind::FuncDecl);
    expect(TokKind::KwFunction, "'function'");
    if (!check(TokKind::Identifier)) {
      error("expected function name");
      return errorStmt();
    }
    std::string Name = Cur.Text;
    advance();
    S->Fn = parseFunctionRest(Name);
    return S;
  }

  std::unique_ptr<FunctionNode> parseFunctionRest(std::string Name) {
    auto Fn = std::make_unique<FunctionNode>();
    Fn->Name = std::move(Name);
    Fn->Line = Cur.Line;
    expect(TokKind::LParen, "'('");
    if (!check(TokKind::RParen)) {
      while (!HadError) {
        if (!check(TokKind::Identifier)) {
          error("expected parameter name");
          return Fn;
        }
        Fn->Params.push_back(Cur.Text);
        advance();
        if (!match(TokKind::Comma))
          break;
      }
    }
    expect(TokKind::RParen, "')'");
    expect(TokKind::LBrace, "'{'");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof) && !HadError)
      Fn->Body.push_back(parseStatement());
    expect(TokKind::RBrace, "'}'");
    return Fn;
  }

  StmtPtr parseIf() {
    auto S = makeStmt(StmtKind::If);
    expect(TokKind::KwIf, "'if'");
    expect(TokKind::LParen, "'('");
    S->E = parseExpression();
    expect(TokKind::RParen, "')'");
    S->Body = parseStatement();
    if (match(TokKind::KwElse))
      S->ElseBody = parseStatement();
    return S;
  }

  StmtPtr parseWhile() {
    auto S = makeStmt(StmtKind::While);
    expect(TokKind::KwWhile, "'while'");
    expect(TokKind::LParen, "'('");
    S->E = parseExpression();
    expect(TokKind::RParen, "')'");
    S->Body = parseStatement();
    return S;
  }

  StmtPtr parseDoWhile() {
    auto S = makeStmt(StmtKind::DoWhile);
    expect(TokKind::KwDo, "'do'");
    S->Body = parseStatement();
    expect(TokKind::KwWhile, "'while'");
    expect(TokKind::LParen, "'('");
    S->E = parseExpression();
    expect(TokKind::RParen, "')'");
    expect(TokKind::Semicolon, "';'");
    return S;
  }

  StmtPtr parseFor() {
    auto S = makeStmt(StmtKind::For);
    expect(TokKind::KwFor, "'for'");
    expect(TokKind::LParen, "'('");
    if (check(TokKind::KwVar)) {
      S->ForInit = parseVarDecl(/*ConsumeSemicolon=*/false);
      expect(TokKind::Semicolon, "';'");
    } else if (!check(TokKind::Semicolon)) {
      auto Init = makeStmt(StmtKind::Expression);
      Init->E = parseExpression();
      S->ForInit = std::move(Init);
      expect(TokKind::Semicolon, "';'");
    } else {
      expect(TokKind::Semicolon, "';'");
    }
    if (!check(TokKind::Semicolon))
      S->E = parseExpression();
    expect(TokKind::Semicolon, "';'");
    if (!check(TokKind::RParen))
      S->ForUpdate = parseExpression();
    expect(TokKind::RParen, "')'");
    S->Body = parseStatement();
    return S;
  }

  StmtPtr parseReturn() {
    auto S = makeStmt(StmtKind::Return);
    expect(TokKind::KwReturn, "'return'");
    if (!check(TokKind::Semicolon))
      S->E = parseExpression();
    expect(TokKind::Semicolon, "';'");
    return S;
  }

  StmtPtr parseBlock() {
    auto S = makeStmt(StmtKind::Block);
    expect(TokKind::LBrace, "'{'");
    while (!check(TokKind::RBrace) && !check(TokKind::Eof) && !HadError)
      S->Stmts.push_back(parseStatement());
    expect(TokKind::RBrace, "'}'");
    return S;
  }

  // --- Expressions (precedence climbing) ---

  ExprPtr parseExpression() { return parseAssignment(); }

  bool isAssignOp(TokKind K) const {
    switch (K) {
    case TokKind::Assign:
    case TokKind::PlusAssign:
    case TokKind::MinusAssign:
    case TokKind::StarAssign:
    case TokKind::SlashAssign:
    case TokKind::PercentAssign:
    case TokKind::AmpAssign:
    case TokKind::PipeAssign:
    case TokKind::CaretAssign:
    case TokKind::ShlAssign:
    case TokKind::ShrAssign:
    case TokKind::UShrAssign:
      return true;
    default:
      return false;
    }
  }

  BinaryOp compoundOp(TokKind K) const {
    switch (K) {
    case TokKind::PlusAssign:
      return BinaryOp::Add;
    case TokKind::MinusAssign:
      return BinaryOp::Sub;
    case TokKind::StarAssign:
      return BinaryOp::Mul;
    case TokKind::SlashAssign:
      return BinaryOp::Div;
    case TokKind::PercentAssign:
      return BinaryOp::Mod;
    case TokKind::AmpAssign:
      return BinaryOp::BitAnd;
    case TokKind::PipeAssign:
      return BinaryOp::BitOr;
    case TokKind::CaretAssign:
      return BinaryOp::BitXor;
    case TokKind::ShlAssign:
      return BinaryOp::Shl;
    case TokKind::ShrAssign:
      return BinaryOp::Shr;
    case TokKind::UShrAssign:
      return BinaryOp::UShr;
    default:
      JITVS_UNREACHABLE("not a compound assignment token");
    }
  }

  ExprPtr parseAssignment() {
    ExprPtr Lhs = parseConditional();
    if (!isAssignOp(Cur.Kind))
      return Lhs;
    if (Lhs->Kind != ExprKind::Ident && Lhs->Kind != ExprKind::Member &&
        Lhs->Kind != ExprKind::Index) {
      error("invalid assignment target");
      return errorExpr();
    }
    TokKind OpTok = Cur.Kind;
    advance();
    auto E = makeExpr(ExprKind::Assign);
    E->IsCompound = OpTok != TokKind::Assign;
    if (E->IsCompound)
      E->BOp = compoundOp(OpTok);
    E->A = std::move(Lhs);
    E->B = parseAssignment();
    return E;
  }

  ExprPtr parseConditional() {
    ExprPtr Cond = parseLogicalOr();
    if (!match(TokKind::Question))
      return Cond;
    auto E = makeExpr(ExprKind::Conditional);
    E->A = std::move(Cond);
    E->B = parseAssignment();
    expect(TokKind::Colon, "':'");
    E->C = parseConditional();
    return E;
  }

  ExprPtr parseLogicalOr() {
    ExprPtr Lhs = parseLogicalAnd();
    while (check(TokKind::PipePipe)) {
      advance();
      auto E = makeExpr(ExprKind::Logical);
      E->LOp = LogicalOp::Or;
      E->A = std::move(Lhs);
      E->B = parseLogicalAnd();
      Lhs = std::move(E);
    }
    return Lhs;
  }

  ExprPtr parseLogicalAnd() {
    ExprPtr Lhs = parseBitOr();
    while (check(TokKind::AmpAmp)) {
      advance();
      auto E = makeExpr(ExprKind::Logical);
      E->LOp = LogicalOp::And;
      E->A = std::move(Lhs);
      E->B = parseBitOr();
      Lhs = std::move(E);
    }
    return Lhs;
  }

  ExprPtr binary(BinaryOp Op, ExprPtr Lhs, ExprPtr Rhs) {
    auto E = makeExpr(ExprKind::Binary);
    E->BOp = Op;
    E->A = std::move(Lhs);
    E->B = std::move(Rhs);
    return E;
  }

  ExprPtr parseBitOr() {
    ExprPtr Lhs = parseBitXor();
    while (check(TokKind::Pipe)) {
      advance();
      Lhs = binary(BinaryOp::BitOr, std::move(Lhs), parseBitXor());
    }
    return Lhs;
  }

  ExprPtr parseBitXor() {
    ExprPtr Lhs = parseBitAnd();
    while (check(TokKind::Caret)) {
      advance();
      Lhs = binary(BinaryOp::BitXor, std::move(Lhs), parseBitAnd());
    }
    return Lhs;
  }

  ExprPtr parseBitAnd() {
    ExprPtr Lhs = parseEquality();
    while (check(TokKind::Amp)) {
      advance();
      Lhs = binary(BinaryOp::BitAnd, std::move(Lhs), parseEquality());
    }
    return Lhs;
  }

  ExprPtr parseEquality() {
    ExprPtr Lhs = parseRelational();
    while (true) {
      BinaryOp Op;
      if (check(TokKind::EqEq))
        Op = BinaryOp::Eq;
      else if (check(TokKind::NotEq))
        Op = BinaryOp::Ne;
      else if (check(TokKind::EqEqEq))
        Op = BinaryOp::StrictEq;
      else if (check(TokKind::NotEqEq))
        Op = BinaryOp::StrictNe;
      else
        return Lhs;
      advance();
      Lhs = binary(Op, std::move(Lhs), parseRelational());
    }
  }

  ExprPtr parseRelational() {
    ExprPtr Lhs = parseShift();
    while (true) {
      BinaryOp Op;
      if (check(TokKind::Lt))
        Op = BinaryOp::Lt;
      else if (check(TokKind::Le))
        Op = BinaryOp::Le;
      else if (check(TokKind::Gt))
        Op = BinaryOp::Gt;
      else if (check(TokKind::Ge))
        Op = BinaryOp::Ge;
      else
        return Lhs;
      advance();
      Lhs = binary(Op, std::move(Lhs), parseShift());
    }
  }

  ExprPtr parseShift() {
    ExprPtr Lhs = parseAdditive();
    while (true) {
      BinaryOp Op;
      if (check(TokKind::Shl))
        Op = BinaryOp::Shl;
      else if (check(TokKind::Shr))
        Op = BinaryOp::Shr;
      else if (check(TokKind::UShr))
        Op = BinaryOp::UShr;
      else
        return Lhs;
      advance();
      Lhs = binary(Op, std::move(Lhs), parseAdditive());
    }
  }

  ExprPtr parseAdditive() {
    ExprPtr Lhs = parseMultiplicative();
    while (true) {
      BinaryOp Op;
      if (check(TokKind::Plus))
        Op = BinaryOp::Add;
      else if (check(TokKind::Minus))
        Op = BinaryOp::Sub;
      else
        return Lhs;
      advance();
      Lhs = binary(Op, std::move(Lhs), parseMultiplicative());
    }
  }

  ExprPtr parseMultiplicative() {
    ExprPtr Lhs = parseUnary();
    while (true) {
      BinaryOp Op;
      if (check(TokKind::Star))
        Op = BinaryOp::Mul;
      else if (check(TokKind::Slash))
        Op = BinaryOp::Div;
      else if (check(TokKind::Percent))
        Op = BinaryOp::Mod;
      else
        return Lhs;
      advance();
      Lhs = binary(Op, std::move(Lhs), parseUnary());
    }
  }

  ExprPtr parseUnary() {
    UnaryOp Op;
    if (check(TokKind::Minus))
      Op = UnaryOp::Neg;
    else if (check(TokKind::Plus))
      Op = UnaryOp::Pos;
    else if (check(TokKind::Bang))
      Op = UnaryOp::Not;
    else if (check(TokKind::Tilde))
      Op = UnaryOp::BitNot;
    else if (check(TokKind::KwTypeof))
      Op = UnaryOp::TypeOf;
    else if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
      bool IsInc = check(TokKind::PlusPlus);
      advance();
      auto E = makeExpr(ExprKind::IncDec);
      E->IsPrefix = true;
      E->IsIncrement = IsInc;
      E->A = parseUnary();
      return E;
    } else {
      return parsePostfix();
    }
    advance();
    auto E = makeExpr(ExprKind::Unary);
    E->UOp = Op;
    E->A = parseUnary();
    return E;
  }

  ExprPtr parsePostfix() {
    ExprPtr E = parseCallMember();
    if (check(TokKind::PlusPlus) || check(TokKind::MinusMinus)) {
      bool IsInc = check(TokKind::PlusPlus);
      advance();
      auto P = makeExpr(ExprKind::IncDec);
      P->IsPrefix = false;
      P->IsIncrement = IsInc;
      P->A = std::move(E);
      return P;
    }
    return E;
  }

  ExprPtr parseCallMember() {
    ExprPtr E;
    if (check(TokKind::KwNew)) {
      advance();
      auto N = makeExpr(ExprKind::New);
      N->A = parseCallMemberNoCall();
      expect(TokKind::LParen, "'('");
      parseArgs(N->Args);
      E = std::move(N);
    } else {
      E = parsePrimary();
    }
    return parseCallMemberSuffixes(std::move(E));
  }

  /// Parses the callee of `new`: primary plus member accesses but no
  /// call-parenthesis consumption (those belong to the `new`).
  ExprPtr parseCallMemberNoCall() {
    ExprPtr E = parsePrimary();
    while (!HadError) {
      if (match(TokKind::Dot)) {
        if (!check(TokKind::Identifier)) {
          error("expected property name");
          return errorExpr();
        }
        auto M = makeExpr(ExprKind::Member);
        M->Str = Cur.Text;
        advance();
        M->A = std::move(E);
        E = std::move(M);
        continue;
      }
      if (check(TokKind::LBracket)) {
        advance();
        auto I = makeExpr(ExprKind::Index);
        I->A = std::move(E);
        I->B = parseExpression();
        expect(TokKind::RBracket, "']'");
        E = std::move(I);
        continue;
      }
      break;
    }
    return E;
  }

  ExprPtr parseCallMemberSuffixes(ExprPtr E) {
    while (!HadError) {
      if (match(TokKind::Dot)) {
        if (!check(TokKind::Identifier)) {
          error("expected property name");
          return errorExpr();
        }
        auto M = makeExpr(ExprKind::Member);
        M->Str = Cur.Text;
        advance();
        M->A = std::move(E);
        E = std::move(M);
        continue;
      }
      if (check(TokKind::LBracket)) {
        advance();
        auto I = makeExpr(ExprKind::Index);
        I->A = std::move(E);
        I->B = parseExpression();
        expect(TokKind::RBracket, "']'");
        E = std::move(I);
        continue;
      }
      if (check(TokKind::LParen)) {
        advance();
        auto C = makeExpr(ExprKind::Call);
        C->A = std::move(E);
        parseArgs(C->Args);
        E = std::move(C);
        continue;
      }
      break;
    }
    return E;
  }

  void parseArgs(std::vector<ExprPtr> &Args) {
    if (match(TokKind::RParen))
      return;
    while (!HadError) {
      Args.push_back(parseAssignment());
      if (!match(TokKind::Comma))
        break;
    }
    expect(TokKind::RParen, "')'");
  }

  ExprPtr parsePrimary() {
    switch (Cur.Kind) {
    case TokKind::Number: {
      auto E = makeExpr(ExprKind::NumberLit);
      E->Num = Cur.NumValue;
      E->IsIntLiteral = Cur.IsIntLiteral;
      advance();
      return E;
    }
    case TokKind::String: {
      auto E = makeExpr(ExprKind::StringLit);
      E->Str = Cur.Text;
      advance();
      return E;
    }
    case TokKind::KwTrue:
    case TokKind::KwFalse: {
      auto E = makeExpr(ExprKind::BoolLit);
      E->BoolVal = Cur.Kind == TokKind::KwTrue;
      advance();
      return E;
    }
    case TokKind::KwNull: {
      auto E = makeExpr(ExprKind::NullLit);
      advance();
      return E;
    }
    case TokKind::KwUndefined: {
      auto E = makeExpr(ExprKind::UndefinedLit);
      advance();
      return E;
    }
    case TokKind::KwThis: {
      auto E = makeExpr(ExprKind::This);
      advance();
      return E;
    }
    case TokKind::Identifier: {
      auto E = makeExpr(ExprKind::Ident);
      E->Str = Cur.Text;
      advance();
      return E;
    }
    case TokKind::LParen: {
      advance();
      ExprPtr E = parseExpression();
      expect(TokKind::RParen, "')'");
      return E;
    }
    case TokKind::LBracket: {
      advance();
      auto E = makeExpr(ExprKind::ArrayLit);
      if (!check(TokKind::RBracket)) {
        while (!HadError) {
          E->Args.push_back(parseAssignment());
          if (!match(TokKind::Comma))
            break;
        }
      }
      expect(TokKind::RBracket, "']'");
      return E;
    }
    case TokKind::LBrace: {
      advance();
      auto E = makeExpr(ExprKind::ObjectLit);
      if (!check(TokKind::RBrace)) {
        while (!HadError) {
          std::string Key;
          if (check(TokKind::Identifier) || check(TokKind::String)) {
            Key = Cur.Text;
            advance();
          } else if (check(TokKind::Number)) {
            Key = std::to_string(static_cast<int64_t>(Cur.NumValue));
            advance();
          } else {
            error("expected property key");
            return errorExpr();
          }
          expect(TokKind::Colon, "':'");
          E->Props.emplace_back(std::move(Key), parseAssignment());
          if (!match(TokKind::Comma))
            break;
        }
      }
      expect(TokKind::RBrace, "'}'");
      return E;
    }
    case TokKind::KwFunction: {
      advance();
      std::string Name;
      if (check(TokKind::Identifier)) {
        Name = Cur.Text;
        advance();
      }
      auto E = makeExpr(ExprKind::Function);
      E->Fn = parseFunctionRest(Name);
      return E;
    }
    default:
      error("unexpected token in expression");
      return errorExpr();
    }
  }

  Lexer Lex;
  Token Cur, Next;
  bool HadError = false;
  std::string ErrorMsg;
};

} // namespace

ParseResult jitvs::parseProgram(const std::string &Source) {
  Parser P(Source);
  ParseResult Result;
  Result.Program = P.run(Result.Error);
  return Result;
}
