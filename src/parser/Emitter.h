//===- parser/Emitter.h - AST -> bytecode compilation -----------*- C++ -*-===//
///
/// \file
/// Front-end entry point: parses MiniJS source, resolves variable
/// bindings (frame slots, captured environment slots, globals) and emits
/// stack bytecode into a Program. Heap-allocated constants (string
/// literals) are created through the caller-provided Heap and rooted by
/// the Program for its lifetime via Runtime.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_PARSER_EMITTER_H
#define JITVS_PARSER_EMITTER_H

#include "vm/Bytecode.h"

#include <memory>
#include <string>

namespace jitvs {

class Heap;

/// Result of compiling source to bytecode.
struct CompileResult {
  std::unique_ptr<Program> Prog;
  std::string Error;

  bool ok() const { return Prog != nullptr; }
};

/// Parses and compiles \p Source. String constants are allocated in
/// \p TheHeap (the caller must keep the resulting Program rooted).
CompileResult compileSource(const std::string &Source, Heap &TheHeap);

} // namespace jitvs

#endif // JITVS_PARSER_EMITTER_H
