//===- parser/Emitter.cpp - Resolver and bytecode emitter -----------------===//
///
/// \file
/// Two stages: a resolver that hoists declarations, marks variables
/// captured by nested closures and assigns frame/environment slots; and a
/// bytecode emitter that walks the AST producing stack code.
///
//===----------------------------------------------------------------------===//

#include "parser/Emitter.h"

#include "parser/AST.h"
#include "parser/Parser.h"
#include "support/Assert.h"
#include "vm/GC.h"
#include "vm/Object.h"

#include <map>
#include <unordered_map>

using namespace jitvs;

namespace {

//===----------------------------------------------------------------------===//
// Resolver
//===----------------------------------------------------------------------===//

/// Declares locals (hoisting vars and function declarations), marks
/// captured variables, then assigns frame and environment slots.
class Resolver {
public:
  explicit Resolver(FunctionNode &Main) : Main(Main) {}

  void run() {
    declareFunction(Main, nullptr);
    markCaptures(Main);
    assignSlotsRecursively(Main);
  }

  /// Resolves \p Name as seen from \p From. Must run after run().
  static ResolvedRef resolve(FunctionNode *From, const std::string &Name,
                             FunctionNode *Main) {
    for (FunctionNode *F = From; F; F = F->EnclosingFn) {
      // Top-level "locals" are globals, handled by the miss path.
      if (F == Main)
        break;
      LocalVar *L = F->findLocal(Name);
      if (!L)
        continue;
      ResolvedRef R;
      if (!L->Captured) {
        assert(F == From && "uncaptured local referenced from nested fn");
        R.Kind = RefKind::Local;
        R.Slot = L->FrameSlot;
        return R;
      }
      R.Kind = RefKind::Env;
      R.Slot = L->EnvSlot;
      R.Depth = envDepth(From, F);
      return R;
    }
    ResolvedRef R;
    R.Kind = RefKind::Global;
    return R;
  }

private:
  /// Number of environment-creating functions from \p From (inclusive) up
  /// to \p Def (exclusive); this is how many hops separate From's current
  /// environment from Def's environment.
  static uint32_t envDepth(FunctionNode *From, FunctionNode *Def) {
    uint32_t D = 0;
    for (FunctionNode *F = From; F != Def; F = F->EnclosingFn) {
      assert(F && "definition not on the lexical chain");
      if (F->NumEnvSlots > 0)
        ++D;
    }
    return D;
  }

  void declareLocal(FunctionNode &Fn, const std::string &Name, bool IsParam) {
    if (&Fn == &Main)
      return; // Top-level declarations are globals.
    if (Fn.findLocal(Name))
      return; // Redeclaration is a no-op (var semantics).
    LocalVar L;
    L.Name = Name;
    L.IsParam = IsParam;
    Fn.Locals.push_back(std::move(L));
  }

  void declareFunction(FunctionNode &Fn, FunctionNode *Enclosing) {
    Fn.EnclosingFn = Enclosing;
    for (const std::string &P : Fn.Params)
      declareLocal(Fn, P, /*IsParam=*/true);
    for (const StmtPtr &S : Fn.Body)
      declareInStmt(Fn, *S);
  }

  void declareInStmt(FunctionNode &Fn, Stmt &S) {
    switch (S.Kind) {
    case StmtKind::VarDecl:
      for (const std::string &N : S.Names)
        declareLocal(Fn, N, /*IsParam=*/false);
      for (const ExprPtr &I : S.Inits)
        if (I)
          declareInExpr(Fn, *I);
      break;
    case StmtKind::FuncDecl:
      declareLocal(Fn, S.Fn->Name, /*IsParam=*/false);
      declareFunction(*S.Fn, &Fn);
      break;
    case StmtKind::Expression:
    case StmtKind::Return:
      if (S.E)
        declareInExpr(Fn, *S.E);
      break;
    case StmtKind::If:
      declareInExpr(Fn, *S.E);
      declareInStmt(Fn, *S.Body);
      if (S.ElseBody)
        declareInStmt(Fn, *S.ElseBody);
      break;
    case StmtKind::While:
    case StmtKind::DoWhile:
      declareInExpr(Fn, *S.E);
      declareInStmt(Fn, *S.Body);
      break;
    case StmtKind::For:
      if (S.ForInit)
        declareInStmt(Fn, *S.ForInit);
      if (S.E)
        declareInExpr(Fn, *S.E);
      if (S.ForUpdate)
        declareInExpr(Fn, *S.ForUpdate);
      declareInStmt(Fn, *S.Body);
      break;
    case StmtKind::Block:
      for (const StmtPtr &Sub : S.Stmts)
        declareInStmt(Fn, *Sub);
      break;
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Empty:
      break;
    }
  }

  void declareInExpr(FunctionNode &Fn, Expr &E) {
    if (E.Kind == ExprKind::Function) {
      declareFunction(*E.Fn, &Fn);
      return;
    }
    if (E.A)
      declareInExpr(Fn, *E.A);
    if (E.B)
      declareInExpr(Fn, *E.B);
    if (E.C)
      declareInExpr(Fn, *E.C);
    for (const ExprPtr &Arg : E.Args)
      declareInExpr(Fn, *Arg);
    for (auto &[K, V] : E.Props)
      declareInExpr(Fn, *V);
  }

  /// Marks a use of \p Name from \p From: if it binds to a local of an
  /// enclosing function, that local becomes captured.
  void markUse(FunctionNode *From, const std::string &Name) {
    for (FunctionNode *F = From; F; F = F->EnclosingFn) {
      if (F == &Main)
        return; // Global.
      LocalVar *L = F->findLocal(Name);
      if (!L)
        continue;
      if (F != From)
        L->Captured = true;
      return;
    }
  }

  void markCaptures(FunctionNode &Fn) {
    for (const StmtPtr &S : Fn.Body)
      markInStmt(Fn, *S);
  }

  void markInStmt(FunctionNode &Fn, Stmt &S) {
    switch (S.Kind) {
    case StmtKind::VarDecl:
      for (const std::string &N : S.Names)
        markUse(&Fn, N);
      for (const ExprPtr &I : S.Inits)
        if (I)
          markInExpr(Fn, *I);
      break;
    case StmtKind::FuncDecl:
      markUse(&Fn, S.Fn->Name);
      markCaptures(*S.Fn);
      break;
    case StmtKind::Expression:
    case StmtKind::Return:
      if (S.E)
        markInExpr(Fn, *S.E);
      break;
    case StmtKind::If:
      markInExpr(Fn, *S.E);
      markInStmt(Fn, *S.Body);
      if (S.ElseBody)
        markInStmt(Fn, *S.ElseBody);
      break;
    case StmtKind::While:
    case StmtKind::DoWhile:
      markInExpr(Fn, *S.E);
      markInStmt(Fn, *S.Body);
      break;
    case StmtKind::For:
      if (S.ForInit)
        markInStmt(Fn, *S.ForInit);
      if (S.E)
        markInExpr(Fn, *S.E);
      if (S.ForUpdate)
        markInExpr(Fn, *S.ForUpdate);
      markInStmt(Fn, *S.Body);
      break;
    case StmtKind::Block:
      for (const StmtPtr &Sub : S.Stmts)
        markInStmt(Fn, *Sub);
      break;
    case StmtKind::Break:
    case StmtKind::Continue:
    case StmtKind::Empty:
      break;
    }
  }

  void markInExpr(FunctionNode &Fn, Expr &E) {
    if (E.Kind == ExprKind::Ident) {
      markUse(&Fn, E.Str);
      return;
    }
    if (E.Kind == ExprKind::Function) {
      markCaptures(*E.Fn);
      return;
    }
    if (E.A)
      markInExpr(Fn, *E.A);
    if (E.B)
      markInExpr(Fn, *E.B);
    if (E.C)
      markInExpr(Fn, *E.C);
    for (const ExprPtr &Arg : E.Args)
      markInExpr(Fn, *Arg);
    for (auto &[K, V] : E.Props)
      markInExpr(Fn, *V);
  }

  void assignSlots(FunctionNode &Fn) {
    uint32_t FrameSlot = static_cast<uint32_t>(Fn.Params.size());
    uint32_t EnvSlot = 0;
    uint32_t ParamIdx = 0;
    for (LocalVar &L : Fn.Locals) {
      if (L.IsParam)
        L.FrameSlot = ParamIdx++;
      if (L.Captured) {
        L.EnvSlot = EnvSlot++;
        continue;
      }
      if (!L.IsParam)
        L.FrameSlot = FrameSlot++;
    }
    Fn.NumFrameSlots = FrameSlot;
    Fn.NumEnvSlots = EnvSlot;
  }

  void assignSlotsRecursively(FunctionNode &Fn) {
    assignSlots(Fn);
    for (const StmtPtr &S : Fn.Body)
      visitNested(*S, [this](FunctionNode &Inner) {
        assignSlotsRecursively(Inner);
      });
  }

  template <typename Callback> void visitNested(Stmt &S, Callback CB) {
    if (S.Kind == StmtKind::FuncDecl) {
      CB(*S.Fn);
      return;
    }
    if (S.E)
      visitNestedExpr(*S.E, CB);
    if (S.Body)
      visitNested(*S.Body, CB);
    if (S.ElseBody)
      visitNested(*S.ElseBody, CB);
    if (S.ForInit)
      visitNested(*S.ForInit, CB);
    if (S.ForUpdate)
      visitNestedExpr(*S.ForUpdate, CB);
    for (const StmtPtr &Sub : S.Stmts)
      visitNested(*Sub, CB);
    for (const ExprPtr &I : S.Inits)
      if (I)
        visitNestedExpr(*I, CB);
  }

  template <typename Callback> void visitNestedExpr(Expr &E, Callback CB) {
    if (E.Kind == ExprKind::Function) {
      CB(*E.Fn);
      return;
    }
    if (E.A)
      visitNestedExpr(*E.A, CB);
    if (E.B)
      visitNestedExpr(*E.B, CB);
    if (E.C)
      visitNestedExpr(*E.C, CB);
    for (const ExprPtr &Arg : E.Args)
      visitNestedExpr(*Arg, CB);
    for (auto &[K, V] : E.Props)
      visitNestedExpr(*V, CB);
  }

  FunctionNode &Main;
};

//===----------------------------------------------------------------------===//
// Emitter
//===----------------------------------------------------------------------===//

class ProgramEmitter;

/// Emits bytecode for a single function.
class FunctionEmitter {
public:
  FunctionEmitter(ProgramEmitter &PE, FunctionNode &Fn, FunctionInfo &Info,
                  FunctionNode &Main)
      : PE(PE), Fn(Fn), Info(Info), Main(Main) {}

  void run();

private:
  struct LoopCtx {
    std::vector<size_t> BreakFixups;
    std::vector<size_t> ContinueFixups;
  };

  // --- Low-level emission ---
  void emitOp(Op O) { Info.Code.push_back(static_cast<uint8_t>(O)); }
  void emitU8(uint8_t V) { Info.Code.push_back(V); }
  void emitU16(uint16_t V) {
    Info.Code.push_back(static_cast<uint8_t>(V));
    Info.Code.push_back(static_cast<uint8_t>(V >> 8));
  }
  void emitU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Info.Code.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  uint32_t here() const { return static_cast<uint32_t>(Info.Code.size()); }

  size_t emitJump(Op O) {
    emitOp(O);
    size_t Fixup = Info.Code.size();
    emitU32(0);
    return Fixup;
  }
  void patchJump(size_t Fixup) { patchJumpTo(Fixup, here()); }
  void patchJumpTo(size_t Fixup, uint32_t Target) {
    for (int I = 0; I < 4; ++I)
      Info.Code[Fixup + I] = static_cast<uint8_t>(Target >> (8 * I));
  }
  void emitJumpTo(Op O, uint32_t Target) {
    emitOp(O);
    emitU32(Target);
  }

  uint16_t constantIndex(const Value &V);
  uint16_t internName(const std::string &Name);
  uint32_t globalSlot(const std::string &Name);
  uint16_t scratchSlot(unsigned Which);

  void note(int Delta) {
    Depth += Delta;
    assert(Depth >= 0 && "operand stack underflow during emission");
    if (static_cast<uint32_t>(Depth) > Info.MaxStackDepth)
      Info.MaxStackDepth = static_cast<uint32_t>(Depth);
  }

  // --- Variable access ---
  ResolvedRef resolve(const std::string &Name) {
    ResolvedRef R = Resolver::resolve(&Fn, Name, &Main);
    return R;
  }
  void emitLoadRef(const ResolvedRef &R, const std::string &Name);
  void emitStoreRef(const ResolvedRef &R, const std::string &Name);

  /// Emits the arithmetic op of a compound assignment; pops one value.
  void emitCompoundOp(BinaryOp BOp) {
    switch (BOp) {
    case BinaryOp::Add:
      emitOp(Op::Add);
      break;
    case BinaryOp::Sub:
      emitOp(Op::Sub);
      break;
    case BinaryOp::Mul:
      emitOp(Op::Mul);
      break;
    case BinaryOp::Div:
      emitOp(Op::Div);
      break;
    case BinaryOp::Mod:
      emitOp(Op::Mod);
      break;
    case BinaryOp::BitAnd:
      emitOp(Op::BitAnd);
      break;
    case BinaryOp::BitOr:
      emitOp(Op::BitOr);
      break;
    case BinaryOp::BitXor:
      emitOp(Op::BitXor);
      break;
    case BinaryOp::Shl:
      emitOp(Op::Shl);
      break;
    case BinaryOp::Shr:
      emitOp(Op::Shr);
      break;
    case BinaryOp::UShr:
      emitOp(Op::UShr);
      break;
    default:
      JITVS_UNREACHABLE("bad compound assignment operator");
    }
    note(-1);
  }

  // --- Statements / expressions ---
  void emitHoistedFunctions();
  void emitStmt(Stmt &S);
  void emitVarDecl(Stmt &S);
  void emitExpr(Expr &E, bool ValueNeeded);
  void emitAssign(Expr &E, bool ValueNeeded);
  void emitIncDec(Expr &E, bool ValueNeeded);
  void emitCall(Expr &E, bool ValueNeeded);

  ProgramEmitter &PE;
  FunctionNode &Fn;
  FunctionInfo &Info;
  FunctionNode &Main;
  int Depth = 0;
  std::vector<LoopCtx> Loops;
  std::map<uint64_t, uint16_t> NumConstCache;
  std::map<std::string, uint16_t> StrConstCache;
  uint16_t ScratchBase = 0;
  unsigned NumScratch = 0;
};

/// Drives per-function emission over a whole program.
class ProgramEmitter {
public:
  ProgramEmitter(Heap &TheHeap) : TheHeap(TheHeap) {}

  std::unique_ptr<Program> run(FunctionNode &Main) {
    Prog = std::make_unique<Program>();
    FunctionInfo *MainInfo = Prog->createFunction("<main>");
    FuncIds[&Main] = MainInfo->Id;
    emitFunction(Main, *MainInfo, Main);
    return std::move(Prog);
  }

  /// \returns the function id for \p Fn, compiling it on first use.
  uint32_t functionId(FunctionNode &Fn, FunctionNode &Main) {
    auto It = FuncIds.find(&Fn);
    if (It != FuncIds.end())
      return It->second;
    std::string Name = Fn.Name.empty() ? "<anonymous>" : Fn.Name;
    FunctionInfo *Info = Prog->createFunction(Name);
    FuncIds[&Fn] = Info->Id;
    emitFunction(Fn, *Info, Main);
    return Info->Id;
  }

  Program &program() { return *Prog; }
  Heap &heap() { return TheHeap; }

private:
  void emitFunction(FunctionNode &Fn, FunctionInfo &Info, FunctionNode &Main) {
    Info.NumParams = static_cast<uint32_t>(Fn.Params.size());
    Info.NumSlots = Fn.NumFrameSlots;
    Info.NumEnvSlots = Fn.NumEnvSlots;
    Info.UsesEnvironment = Fn.NumEnvSlots > 0;
    for (const LocalVar &L : Fn.Locals)
      if (L.IsParam && L.Captured)
        Info.CapturedParams.emplace_back(static_cast<uint16_t>(L.FrameSlot),
                                         static_cast<uint16_t>(L.EnvSlot));
    FunctionEmitter FE(*this, Fn, Info, Main);
    FE.run();
  }

  Heap &TheHeap;
  std::unique_ptr<Program> Prog;
  std::unordered_map<FunctionNode *, uint32_t> FuncIds;
};

uint16_t FunctionEmitter::constantIndex(const Value &V) {
  if (V.isString()) {
    const std::string &S = V.asString()->str();
    auto It = StrConstCache.find(S);
    if (It != StrConstCache.end())
      return It->second;
    uint16_t Idx = static_cast<uint16_t>(Info.Constants.size());
    Info.Constants.push_back(V);
    StrConstCache[S] = Idx;
    return Idx;
  }
  uint64_t Key = V.specializationHash();
  auto It = NumConstCache.find(Key);
  if (It != NumConstCache.end())
    return It->second;
  uint16_t Idx = static_cast<uint16_t>(Info.Constants.size());
  Info.Constants.push_back(V);
  NumConstCache[Key] = Idx;
  return Idx;
}

uint16_t FunctionEmitter::internName(const std::string &Name) {
  return static_cast<uint16_t>(PE.program().names().intern(Name));
}

uint32_t FunctionEmitter::globalSlot(const std::string &Name) {
  return PE.program().globalSlot(Name);
}

uint16_t FunctionEmitter::scratchSlot(unsigned Which) {
  if (ScratchBase == 0)
    ScratchBase = static_cast<uint16_t>(Fn.NumFrameSlots);
  if (Which + 1 > NumScratch)
    NumScratch = Which + 1;
  uint32_t Total = Fn.NumFrameSlots + NumScratch;
  if (Total > Info.NumSlots)
    Info.NumSlots = Total;
  return static_cast<uint16_t>(ScratchBase + Which);
}

void FunctionEmitter::emitLoadRef(const ResolvedRef &R,
                                  const std::string &Name) {
  switch (R.Kind) {
  case RefKind::Local:
    emitOp(Op::GetSlot);
    emitU16(static_cast<uint16_t>(R.Slot));
    break;
  case RefKind::Env:
    emitOp(Op::GetEnvSlot);
    emitU8(static_cast<uint8_t>(R.Depth));
    emitU16(static_cast<uint16_t>(R.Slot));
    break;
  case RefKind::Global:
    emitOp(Op::GetGlobal);
    emitU16(static_cast<uint16_t>(globalSlot(Name)));
    break;
  case RefKind::Unresolved:
    JITVS_UNREACHABLE("unresolved reference at emission");
  }
  note(+1);
}

void FunctionEmitter::emitStoreRef(const ResolvedRef &R,
                                   const std::string &Name) {
  switch (R.Kind) {
  case RefKind::Local:
    emitOp(Op::SetSlot);
    emitU16(static_cast<uint16_t>(R.Slot));
    break;
  case RefKind::Env:
    emitOp(Op::SetEnvSlot);
    emitU8(static_cast<uint8_t>(R.Depth));
    emitU16(static_cast<uint16_t>(R.Slot));
    break;
  case RefKind::Global:
    emitOp(Op::SetGlobal);
    emitU16(static_cast<uint16_t>(globalSlot(Name)));
    break;
  case RefKind::Unresolved:
    JITVS_UNREACHABLE("unresolved reference at emission");
  }
  note(-1);
}

void FunctionEmitter::run() {
  emitHoistedFunctions();
  for (const StmtPtr &S : Fn.Body)
    emitStmt(*S);
  emitOp(Op::ReturnUndefined);
}

void FunctionEmitter::emitHoistedFunctions() {
  for (const StmtPtr &S : Fn.Body) {
    if (S->Kind != StmtKind::FuncDecl)
      continue;
    uint32_t Id = PE.functionId(*S->Fn, Main);
    emitOp(Op::MakeClosure);
    emitU16(static_cast<uint16_t>(Id));
    note(+1);
    emitStoreRef(resolve(S->Fn->Name), S->Fn->Name);
  }
}

void FunctionEmitter::emitStmt(Stmt &S) {
  switch (S.Kind) {
  case StmtKind::Expression:
    emitExpr(*S.E, /*ValueNeeded=*/false);
    return;
  case StmtKind::VarDecl:
    emitVarDecl(S);
    return;
  case StmtKind::FuncDecl:
    // Hoisted; nothing to do at the original position when this is a
    // direct child of the function body. (Nested declarations inside
    // blocks were also hoisted by emitHoistedFunctions only if direct
    // children; emit them here otherwise.)
    return;
  case StmtKind::If: {
    emitExpr(*S.E, /*ValueNeeded=*/true);
    note(-1);
    size_t ElseJump = emitJump(Op::JumpIfFalse);
    emitStmt(*S.Body);
    if (S.ElseBody) {
      size_t EndJump = emitJump(Op::Jump);
      patchJump(ElseJump);
      emitStmt(*S.ElseBody);
      patchJump(EndJump);
    } else {
      patchJump(ElseJump);
    }
    return;
  }
  case StmtKind::While: {
    uint32_t Head = here();
    emitOp(Op::LoopHead);
    emitExpr(*S.E, /*ValueNeeded=*/true);
    note(-1);
    size_t EndJump = emitJump(Op::JumpIfFalse);
    Loops.emplace_back();
    emitStmt(*S.Body);
    LoopCtx Ctx = std::move(Loops.back());
    Loops.pop_back();
    for (size_t F : Ctx.ContinueFixups)
      patchJumpTo(F, Head);
    emitJumpTo(Op::Jump, Head);
    patchJump(EndJump);
    for (size_t F : Ctx.BreakFixups)
      patchJump(F);
    return;
  }
  case StmtKind::DoWhile: {
    uint32_t Head = here();
    emitOp(Op::LoopHead);
    Loops.emplace_back();
    emitStmt(*S.Body);
    LoopCtx Ctx = std::move(Loops.back());
    Loops.pop_back();
    uint32_t CondPos = here();
    for (size_t F : Ctx.ContinueFixups)
      patchJumpTo(F, CondPos);
    emitExpr(*S.E, /*ValueNeeded=*/true);
    note(-1);
    emitJumpTo(Op::JumpIfTrue, Head);
    for (size_t F : Ctx.BreakFixups)
      patchJump(F);
    return;
  }
  case StmtKind::For: {
    if (S.ForInit)
      emitStmt(*S.ForInit);
    uint32_t Head = here();
    emitOp(Op::LoopHead);
    size_t EndJump = 0;
    bool HasCond = S.E != nullptr;
    if (HasCond) {
      emitExpr(*S.E, /*ValueNeeded=*/true);
      note(-1);
      EndJump = emitJump(Op::JumpIfFalse);
    }
    Loops.emplace_back();
    emitStmt(*S.Body);
    LoopCtx Ctx = std::move(Loops.back());
    Loops.pop_back();
    uint32_t UpdatePos = here();
    for (size_t F : Ctx.ContinueFixups)
      patchJumpTo(F, UpdatePos);
    if (S.ForUpdate)
      emitExpr(*S.ForUpdate, /*ValueNeeded=*/false);
    emitJumpTo(Op::Jump, Head);
    if (HasCond)
      patchJump(EndJump);
    for (size_t F : Ctx.BreakFixups)
      patchJump(F);
    return;
  }
  case StmtKind::Return:
    if (S.E) {
      emitExpr(*S.E, /*ValueNeeded=*/true);
      emitOp(Op::Return);
      note(-1);
    } else {
      emitOp(Op::ReturnUndefined);
    }
    return;
  case StmtKind::Break:
    assert(!Loops.empty() && "break outside of loop");
    Loops.back().BreakFixups.push_back(emitJump(Op::Jump));
    return;
  case StmtKind::Continue:
    assert(!Loops.empty() && "continue outside of loop");
    Loops.back().ContinueFixups.push_back(emitJump(Op::Jump));
    return;
  case StmtKind::Block:
    for (const StmtPtr &Sub : S.Stmts) {
      if (Sub->Kind == StmtKind::FuncDecl) {
        // Function declaration nested in a block: create it here.
        uint32_t Id = PE.functionId(*Sub->Fn, Main);
        emitOp(Op::MakeClosure);
        emitU16(static_cast<uint16_t>(Id));
        note(+1);
        emitStoreRef(resolve(Sub->Fn->Name), Sub->Fn->Name);
        continue;
      }
      emitStmt(*Sub);
    }
    return;
  case StmtKind::Empty:
    return;
  }
  JITVS_UNREACHABLE("bad StmtKind");
}

void FunctionEmitter::emitVarDecl(Stmt &S) {
  for (size_t I = 0, E = S.Names.size(); I != E; ++I) {
    if (!S.Inits[I])
      continue;
    emitExpr(*S.Inits[I], /*ValueNeeded=*/true);
    emitStoreRef(resolve(S.Names[I]), S.Names[I]);
  }
}

void FunctionEmitter::emitExpr(Expr &E, bool ValueNeeded) {
  switch (E.Kind) {
  case ExprKind::NumberLit: {
    if (!ValueNeeded)
      return;
    Value V = Value::number(E.Num);
    if (V.isInt32() && V.asInt32() >= -128 && V.asInt32() <= 127) {
      emitOp(Op::PushInt8);
      emitU8(static_cast<uint8_t>(static_cast<int8_t>(V.asInt32())));
    } else {
      emitOp(Op::PushConst);
      emitU16(constantIndex(V));
    }
    note(+1);
    return;
  }
  case ExprKind::StringLit: {
    if (!ValueNeeded)
      return;
    JSString *S = PE.heap().allocate<JSString>(E.Str);
    emitOp(Op::PushConst);
    emitU16(constantIndex(Value::string(S)));
    note(+1);
    return;
  }
  case ExprKind::BoolLit:
    if (!ValueNeeded)
      return;
    emitOp(E.BoolVal ? Op::PushTrue : Op::PushFalse);
    note(+1);
    return;
  case ExprKind::NullLit:
    if (!ValueNeeded)
      return;
    emitOp(Op::PushNull);
    note(+1);
    return;
  case ExprKind::UndefinedLit:
    if (!ValueNeeded)
      return;
    emitOp(Op::PushUndefined);
    note(+1);
    return;
  case ExprKind::Ident:
    if (!ValueNeeded)
      return;
    emitLoadRef(resolve(E.Str), E.Str);
    return;
  case ExprKind::This:
    if (!ValueNeeded)
      return;
    emitOp(Op::GetThis);
    note(+1);
    return;
  case ExprKind::Unary: {
    emitExpr(*E.A, /*ValueNeeded=*/true);
    switch (E.UOp) {
    case UnaryOp::Neg:
      emitOp(Op::Neg);
      break;
    case UnaryOp::Pos:
      emitOp(Op::Pos);
      break;
    case UnaryOp::Not:
      emitOp(Op::Not);
      break;
    case UnaryOp::BitNot:
      emitOp(Op::BitNot);
      break;
    case UnaryOp::TypeOf:
      emitOp(Op::TypeOf);
      break;
    }
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }
  case ExprKind::Binary: {
    emitExpr(*E.A, /*ValueNeeded=*/true);
    emitExpr(*E.B, /*ValueNeeded=*/true);
    switch (E.BOp) {
    case BinaryOp::Add:
      emitOp(Op::Add);
      break;
    case BinaryOp::Sub:
      emitOp(Op::Sub);
      break;
    case BinaryOp::Mul:
      emitOp(Op::Mul);
      break;
    case BinaryOp::Div:
      emitOp(Op::Div);
      break;
    case BinaryOp::Mod:
      emitOp(Op::Mod);
      break;
    case BinaryOp::BitAnd:
      emitOp(Op::BitAnd);
      break;
    case BinaryOp::BitOr:
      emitOp(Op::BitOr);
      break;
    case BinaryOp::BitXor:
      emitOp(Op::BitXor);
      break;
    case BinaryOp::Shl:
      emitOp(Op::Shl);
      break;
    case BinaryOp::Shr:
      emitOp(Op::Shr);
      break;
    case BinaryOp::UShr:
      emitOp(Op::UShr);
      break;
    case BinaryOp::Lt:
      emitOp(Op::Lt);
      break;
    case BinaryOp::Le:
      emitOp(Op::Le);
      break;
    case BinaryOp::Gt:
      emitOp(Op::Gt);
      break;
    case BinaryOp::Ge:
      emitOp(Op::Ge);
      break;
    case BinaryOp::Eq:
      emitOp(Op::Eq);
      break;
    case BinaryOp::Ne:
      emitOp(Op::Ne);
      break;
    case BinaryOp::StrictEq:
      emitOp(Op::StrictEq);
      break;
    case BinaryOp::StrictNe:
      emitOp(Op::StrictNe);
      break;
    }
    note(-1);
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }
  case ExprKind::Logical: {
    emitExpr(*E.A, /*ValueNeeded=*/true);
    emitOp(Op::Dup);
    note(+1);
    note(-1);
    size_t End = emitJump(E.LOp == LogicalOp::And ? Op::JumpIfFalse
                                                  : Op::JumpIfTrue);
    emitOp(Op::Pop);
    note(-1);
    emitExpr(*E.B, /*ValueNeeded=*/true);
    patchJump(End);
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }
  case ExprKind::Assign:
    emitAssign(E, ValueNeeded);
    return;
  case ExprKind::Conditional: {
    emitExpr(*E.A, /*ValueNeeded=*/true);
    note(-1);
    size_t ElseJump = emitJump(Op::JumpIfFalse);
    emitExpr(*E.B, ValueNeeded);
    size_t EndJump = emitJump(Op::Jump);
    if (ValueNeeded)
      note(-1); // Both arms produce one value; count it once.
    patchJump(ElseJump);
    emitExpr(*E.C, ValueNeeded);
    patchJump(EndJump);
    return;
  }
  case ExprKind::Call:
  case ExprKind::New:
    emitCall(E, ValueNeeded);
    return;
  case ExprKind::Member: {
    emitExpr(*E.A, /*ValueNeeded=*/true);
    emitOp(Op::GetProp);
    emitU16(internName(E.Str));
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }
  case ExprKind::Index: {
    emitExpr(*E.A, /*ValueNeeded=*/true);
    emitExpr(*E.B, /*ValueNeeded=*/true);
    emitOp(Op::GetElem);
    note(-1);
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }
  case ExprKind::ArrayLit: {
    for (const ExprPtr &Elem : E.Args)
      emitExpr(*Elem, /*ValueNeeded=*/true);
    emitOp(Op::NewArray);
    emitU16(static_cast<uint16_t>(E.Args.size()));
    note(-static_cast<int>(E.Args.size()));
    note(+1);
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }
  case ExprKind::ObjectLit: {
    emitOp(Op::NewObject);
    note(+1);
    for (auto &[Key, V] : E.Props) {
      emitExpr(*V, /*ValueNeeded=*/true);
      emitOp(Op::InitProp);
      emitU16(internName(Key));
      note(-1);
    }
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }
  case ExprKind::Function: {
    uint32_t Id = PE.functionId(*E.Fn, Main);
    emitOp(Op::MakeClosure);
    emitU16(static_cast<uint16_t>(Id));
    note(+1);
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }
  case ExprKind::IncDec:
    emitIncDec(E, ValueNeeded);
    return;
  }
  JITVS_UNREACHABLE("bad ExprKind");
}

void FunctionEmitter::emitAssign(Expr &E, bool ValueNeeded) {
  Expr &Target = *E.A;
  if (Target.Kind == ExprKind::Ident) {
    if (E.IsCompound) {
      emitLoadRef(resolve(Target.Str), Target.Str);
      emitExpr(*E.B, /*ValueNeeded=*/true);
      emitCompoundOp(E.BOp);
    } else {
      emitExpr(*E.B, /*ValueNeeded=*/true);
    }
    if (ValueNeeded) {
      emitOp(Op::Dup);
      note(+1);
    }
    emitStoreRef(resolve(Target.Str), Target.Str);
    return;
  }

  if (Target.Kind == ExprKind::Member) {
    emitExpr(*Target.A, /*ValueNeeded=*/true);
    if (E.IsCompound) {
      emitOp(Op::Dup);
      note(+1);
      emitOp(Op::GetProp);
      emitU16(internName(Target.Str));
      emitExpr(*E.B, /*ValueNeeded=*/true);
      emitCompoundOp(E.BOp);
    } else {
      emitExpr(*E.B, /*ValueNeeded=*/true);
    }
    emitOp(Op::SetProp);
    emitU16(internName(Target.Str));
    note(-1); // [obj, value] -> [value]
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
    }
    return;
  }

  assert(Target.Kind == ExprKind::Index && "bad assignment target");
  emitExpr(*Target.A, /*ValueNeeded=*/true);
  emitExpr(*Target.B, /*ValueNeeded=*/true);
  if (E.IsCompound) {
    emitOp(Op::Dup2);
    note(+2);
    emitOp(Op::GetElem);
    note(-1);
    emitExpr(*E.B, /*ValueNeeded=*/true);
    emitCompoundOp(E.BOp);
  } else {
    emitExpr(*E.B, /*ValueNeeded=*/true);
  }
  emitOp(Op::SetElem);
  note(-2); // [obj, idx, value] -> [value]
  if (!ValueNeeded) {
    emitOp(Op::Pop);
    note(-1);
  }
}

void FunctionEmitter::emitIncDec(Expr &E, bool ValueNeeded) {
  Expr &Target = *E.A;
  Op Combine = E.IsIncrement ? Op::Add : Op::Sub;

  auto EmitOne = [this] {
    emitOp(Op::PushInt8);
    emitU8(1);
    note(+1);
  };

  if (Target.Kind == ExprKind::Ident) {
    ResolvedRef R = resolve(Target.Str);
    emitLoadRef(R, Target.Str);
    // Numeric coercion so that postfix returns a number even for
    // non-number inputs (matches JS ToNumber semantics).
    emitOp(Op::Pos);
    if (!E.IsPrefix && ValueNeeded) {
      emitOp(Op::Dup);
      note(+1);
    }
    EmitOne();
    emitOp(Combine);
    note(-1);
    if (E.IsPrefix && ValueNeeded) {
      emitOp(Op::Dup);
      note(+1);
    }
    emitStoreRef(R, Target.Str);
    return;
  }

  if (Target.Kind == ExprKind::Member) {
    uint16_t NameId = internName(Target.Str);
    uint16_t Scratch = scratchSlot(0);
    emitExpr(*Target.A, /*ValueNeeded=*/true);
    emitOp(Op::Dup);
    note(+1);
    emitOp(Op::GetProp);
    emitU16(NameId);
    emitOp(Op::Pos);
    emitOp(Op::SetSlot); // Save old numeric value.
    emitU16(Scratch);
    note(-1);
    emitOp(Op::GetSlot);
    emitU16(Scratch);
    note(+1);
    EmitOne();
    emitOp(Combine);
    note(-1);
    emitOp(Op::SetProp);
    emitU16(NameId);
    note(-1);
    if (!ValueNeeded) {
      emitOp(Op::Pop);
      note(-1);
      return;
    }
    if (!E.IsPrefix) {
      emitOp(Op::Pop);
      note(-1);
      emitOp(Op::GetSlot);
      emitU16(Scratch);
      note(+1);
    }
    return;
  }

  assert(Target.Kind == ExprKind::Index && "bad ++/-- target");
  uint16_t Scratch = scratchSlot(0);
  emitExpr(*Target.A, /*ValueNeeded=*/true);
  emitExpr(*Target.B, /*ValueNeeded=*/true);
  emitOp(Op::Dup2);
  note(+2);
  emitOp(Op::GetElem);
  note(-1);
  emitOp(Op::Pos);
  emitOp(Op::SetSlot);
  emitU16(Scratch);
  note(-1);
  emitOp(Op::GetSlot);
  emitU16(Scratch);
  note(+1);
  EmitOne();
  emitOp(Combine);
  note(-1);
  emitOp(Op::SetElem);
  note(-2);
  if (!ValueNeeded) {
    emitOp(Op::Pop);
    note(-1);
    return;
  }
  if (!E.IsPrefix) {
    emitOp(Op::Pop);
    note(-1);
    emitOp(Op::GetSlot);
    emitU16(Scratch);
    note(+1);
  }
}

void FunctionEmitter::emitCall(Expr &E, bool ValueNeeded) {
  assert(E.Args.size() <= 255 && "too many call arguments");
  if (E.Kind == ExprKind::New) {
    emitExpr(*E.A, /*ValueNeeded=*/true);
    for (const ExprPtr &Arg : E.Args)
      emitExpr(*Arg, /*ValueNeeded=*/true);
    emitOp(Op::New);
    emitU8(static_cast<uint8_t>(E.Args.size()));
    note(-static_cast<int>(E.Args.size()));
  } else if (E.A->Kind == ExprKind::Member) {
    // Method call: receiver on the stack, CallMethod binds `this`.
    emitExpr(*E.A->A, /*ValueNeeded=*/true);
    for (const ExprPtr &Arg : E.Args)
      emitExpr(*Arg, /*ValueNeeded=*/true);
    emitOp(Op::CallMethod);
    emitU16(internName(E.A->Str));
    emitU8(static_cast<uint8_t>(E.Args.size()));
    note(-static_cast<int>(E.Args.size()));
  } else {
    emitExpr(*E.A, /*ValueNeeded=*/true);
    for (const ExprPtr &Arg : E.Args)
      emitExpr(*Arg, /*ValueNeeded=*/true);
    emitOp(Op::Call);
    emitU8(static_cast<uint8_t>(E.Args.size()));
    note(-static_cast<int>(E.Args.size()));
  }
  if (!ValueNeeded) {
    emitOp(Op::Pop);
    note(-1);
  }
}

} // namespace

CompileResult jitvs::compileSource(const std::string &Source, Heap &TheHeap) {
  CompileResult Result;
  ParseResult Parsed = parseProgram(Source);
  if (!Parsed.ok()) {
    Result.Error = Parsed.Error;
    return Result;
  }

  // Wrap the top level in a synthetic main function for resolution.
  FunctionNode Main;
  Main.Name = "<main>";
  Main.Body = std::move(Parsed.Program->Body);

  Resolver R(Main);
  R.run();

  ProgramEmitter PE(TheHeap);
  Result.Prog = PE.run(Main);
  return Result;
}
