//===- parser/AST.h - MiniJS abstract syntax tree ---------------*- C++ -*-===//
///
/// \file
/// AST node definitions for MiniJS. Nodes use kind-tag dispatch (no RTTI).
/// The variable resolver annotates identifier nodes and function nodes in
/// place before bytecode emission.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_PARSER_AST_H
#define JITVS_PARSER_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace jitvs {

struct Expr;
struct Stmt;
struct FunctionNode;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

enum class ExprKind : uint8_t {
  NumberLit,
  StringLit,
  BoolLit,
  NullLit,
  UndefinedLit,
  Ident,
  This,
  Unary,
  Binary,
  Logical,
  Assign,
  Conditional,
  Call,
  New,
  Member,
  Index,
  ArrayLit,
  ObjectLit,
  Function,
  IncDec,
};

enum class UnaryOp : uint8_t { Neg, Pos, Not, BitNot, TypeOf };

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Mod,
  BitAnd,
  BitOr,
  BitXor,
  Shl,
  Shr,
  UShr,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  StrictEq,
  StrictNe,
};

enum class LogicalOp : uint8_t { And, Or };

/// How the resolver bound an identifier.
enum class RefKind : uint8_t {
  Unresolved,
  Local,  ///< Frame slot of the enclosing function.
  Env,    ///< Environment slot (captured variable), Depth levels up.
  Global, ///< Program global slot.
};

struct ResolvedRef {
  RefKind Kind = RefKind::Unresolved;
  uint32_t Slot = 0;
  uint32_t Depth = 0; ///< For Env refs: lexical hops from the use site.
};

struct Expr {
  ExprKind Kind;
  uint32_t Line = 0;

  // NumberLit.
  double Num = 0;
  bool IsIntLiteral = false;
  // StringLit / Ident / Member property name.
  std::string Str;
  // BoolLit.
  bool BoolVal = false;
  // Ident resolution (filled by the resolver).
  ResolvedRef Ref;

  // Unary / IncDec.
  UnaryOp UOp = UnaryOp::Neg;
  bool IsPrefix = false; ///< IncDec: ++x vs x++.
  bool IsIncrement = false;

  BinaryOp BOp = BinaryOp::Add;
  LogicalOp LOp = LogicalOp::And;

  // Operand slots, by kind:
  //   Unary/IncDec: A
  //   Binary/Logical/Index/Assign (target=A, value=B): A, B
  //   Conditional: A (cond), B (then), C (else)
  //   Member: A (object), Str (property)
  //   Call/New: A (callee), Args
  ExprPtr A, B, C;
  std::vector<ExprPtr> Args;

  // Assign: compound operator (BOp used when IsCompound).
  bool IsCompound = false;

  // ArrayLit elements live in Args; ObjectLit uses Props.
  std::vector<std::pair<std::string, ExprPtr>> Props;

  // Function expression / declaration body.
  std::unique_ptr<FunctionNode> Fn;

  explicit Expr(ExprKind K) : Kind(K) {}
};

enum class StmtKind : uint8_t {
  Expression,
  VarDecl,
  FuncDecl,
  If,
  While,
  DoWhile,
  For,
  Return,
  Break,
  Continue,
  Block,
  Empty,
};

struct Stmt {
  StmtKind Kind;
  uint32_t Line = 0;

  ExprPtr E;                      ///< Expression / condition / return value.
  StmtPtr Body, ElseBody;         ///< if/loops bodies.
  std::vector<StmtPtr> Stmts;     ///< Block contents.
  // VarDecl: parallel vectors of names, refs and optional initializers.
  std::vector<std::string> Names;
  std::vector<ResolvedRef> Refs;
  std::vector<ExprPtr> Inits;
  // For: init statement (VarDecl or Expression), update expression.
  StmtPtr ForInit;
  ExprPtr ForUpdate;
  // FuncDecl.
  std::unique_ptr<FunctionNode> Fn;
  ResolvedRef FnRef; ///< Where the declared function value is stored.

  explicit Stmt(StmtKind K) : Kind(K) {}
};

/// A variable declared in a function's scope (parameter or var).
struct LocalVar {
  std::string Name;
  bool IsParam = false;
  bool Captured = false; ///< Accessed by a nested function.
  uint32_t FrameSlot = 0;
  uint32_t EnvSlot = 0;
};

/// A parsed function: parameters, body, and resolver results.
struct FunctionNode {
  std::string Name; ///< Empty for anonymous function expressions.
  std::vector<std::string> Params;
  std::vector<StmtPtr> Body;
  uint32_t Line = 0;

  // --- Resolver annotations ---
  FunctionNode *EnclosingFn = nullptr;
  std::vector<LocalVar> Locals; ///< Params first, then vars (hoisted).
  uint32_t NumFrameSlots = 0;
  uint32_t NumEnvSlots = 0;
  bool UsesThis = false;

  /// \returns the local named \p N, or nullptr.
  LocalVar *findLocal(const std::string &N) {
    for (LocalVar &L : Locals)
      if (L.Name == N)
        return &L;
    return nullptr;
  }
};

/// A parsed program: top-level statements (executed as function 0).
struct ProgramNode {
  std::vector<StmtPtr> Body;
};

} // namespace jitvs

#endif // JITVS_PARSER_AST_H
