//===- parser/Parser.h - Recursive-descent MiniJS parser --------*- C++ -*-===//
///
/// \file
/// Parses MiniJS source into an AST. Errors are reported through the
/// returned ParseResult; no exceptions are used.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_PARSER_PARSER_H
#define JITVS_PARSER_PARSER_H

#include "parser/AST.h"
#include "parser/Lexer.h"

#include <memory>
#include <string>

namespace jitvs {

/// Outcome of parsing: either a program or an error message with position.
struct ParseResult {
  std::unique_ptr<ProgramNode> Program;
  std::string Error;

  bool ok() const { return Program != nullptr; }
};

/// Parses \p Source as a MiniJS program.
ParseResult parseProgram(const std::string &Source);

} // namespace jitvs

#endif // JITVS_PARSER_PARSER_H
