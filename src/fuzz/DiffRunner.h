//===- fuzz/DiffRunner.h - Differential config-matrix runner ----*- C++ -*-===//
///
/// \file
/// Runs one MiniJS source under a matrix of engine configurations and
/// diffs the observable behavior — printed output, the error state, and
/// the completion value — against a plain-interpreter reference run.
/// Observable means exactly what a user of the language can see: value
/// *tags* are deliberately not compared (the interpreter canonicalizes
/// 0.5 + 0.5 to Int32 1 while compiled AddD yields Double 1.0 — both
/// print, compare and typeof identically), but -0 vs +0 *is* compared,
/// via the bit pattern of the completion value and `1 / v` print probes
/// emitted by the generator.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_FUZZ_DIFFRUNNER_H
#define JITVS_FUZZ_DIFFRUNNER_H

#include "jit/Engine.h"

#include <string>
#include <vector>

namespace jitvs {
namespace fuzz {

/// One cell of the configuration matrix.
struct EngineSetup {
  std::string Name;
  /// false = plain interpreter, no Engine attached (the reference).
  bool UseJit = true;
  /// true = Runtime::setShapesEnabled(false): no IC fast paths, no shape
  /// feedback, property ops stay generic in both tiers.
  bool ShapesOff = false;
  /// true = Heap::setGCStress(true): a moving minor collection at every
  /// allocation-site safepoint. Shakes out unrooted values and stale raw
  /// pointers held across allocating calls. (JITVS_GC_STRESS=1 in the
  /// environment stresses every column regardless of this flag.)
  bool GCStress = false;
  OptConfig Opt;
  EngineKnobs Knobs;
};

/// The default matrix: an interpreter reference plus eight JIT
/// configurations spanning paper/tiered policy, fusion on/off, both
/// dispatch modes, baseline/full optimization and overflow-check
/// elimination. Thresholds are aggressive (calls=3, loops=20) so the
/// generated programs actually reach native code, OSR and bailouts.
std::vector<EngineSetup> defaultMatrix();

/// Everything observable from one run, plus engine telemetry for
/// divergence reports.
struct RunOutcome {
  std::string Output;     ///< Accumulated print() text.
  bool HadError = false;  ///< Runtime::hasError() after the run.
  std::string Error;      ///< Runtime::errorMessage().
  std::string Completion; ///< Rendered completion value (-0 aware).
  EngineStats Stats;      ///< Zero-initialized for the interpreter run.

  bool sameObservable(const RunOutcome &O) const {
    return Output == O.Output && HadError == O.HadError && Error == O.Error &&
           Completion == O.Completion;
  }
};

/// Runs \p Source once under \p Setup.
RunOutcome runOnce(const std::string &Source, const EngineSetup &Setup);

/// A reference/actual mismatch under one configuration.
struct Divergence {
  std::string ConfigName;
  RunOutcome Reference;
  RunOutcome Actual;
};

struct DiffResult {
  std::vector<Divergence> Divergences;
  bool diverged() const { return !Divergences.empty(); }
};

/// Runs \p Source under every setup in \p Matrix. The first setup with
/// UseJit == false is the reference; if none is, a plain interpreter
/// reference is implied.
DiffResult runMatrix(const std::string &Source,
                     const std::vector<EngineSetup> &Matrix);

/// Formats a human-readable divergence report: seed, config, the
/// expected/actual observables, and the actual run's bailout-reason and
/// tier telemetry (so a reader can tell *which* speculative mechanism
/// produced the wrong answer). \p Source should be the (minimized)
/// reproducer; it is included verbatim.
std::string describeDivergence(const Divergence &D, uint64_t Seed,
                               const std::string &Source);

} // namespace fuzz
} // namespace jitvs

#endif // JITVS_FUZZ_DIFFRUNNER_H
