//===- fuzz/Minimizer.h - Greedy test-case minimizer ------------*- C++ -*-===//
///
/// \file
/// Shrinks a diverging FuzzProgram to a minimal reproducer: greedily
/// deletes whole units (function definitions, top-level runs) and then
/// individual statements, keeping each deletion only if the divergence
/// oracle still fires, and repeats to a fixpoint. Deletions can render
/// the program invalid (e.g. a caller outliving its callee) — that is
/// fine, because an invalid program fails identically under every
/// configuration, so the oracle rejects the deletion.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_FUZZ_MINIMIZER_H
#define JITVS_FUZZ_MINIMIZER_H

#include "fuzz/ProgramGen.h"

#include <functional>

namespace jitvs {
namespace fuzz {

/// \returns true if \p Source still exhibits the divergence being chased.
using Oracle = std::function<bool(const std::string &Source)>;

/// Greedily minimizes \p P under \p StillFails. \p MaxOracleCalls bounds
/// the total work (each call re-runs the whole config matrix).
FuzzProgram minimize(const FuzzProgram &P, const Oracle &StillFails,
                     size_t MaxOracleCalls = 1500);

} // namespace fuzz
} // namespace jitvs

#endif // JITVS_FUZZ_MINIMIZER_H
