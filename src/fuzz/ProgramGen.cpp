//===- fuzz/ProgramGen.cpp - Seeded MiniJS program generator --------------===//

#include "fuzz/ProgramGen.h"

#include "support/RNG.h"

#include <cassert>

namespace jitvs {
namespace fuzz {

std::string FuzzProgram::render() const {
  std::string Out;
  for (const Unit &U : Units) {
    if (!U.Header.empty()) {
      Out += U.Header;
      Out += '\n';
    }
    for (const std::string &S : U.Stmts) {
      Out += S;
      Out += '\n';
    }
    if (!U.Footer.empty()) {
      Out += U.Footer;
      Out += '\n';
    }
  }
  return Out;
}

size_t FuzzProgram::statementCount() const {
  size_t N = 0;
  for (const Unit &U : Units)
    N += U.Stmts.size();
  return N;
}

namespace {

/// All state for one generation run. Every random draw goes through the
/// single splitmix64 stream, so the output is a pure function of the seed.
class Gen {
public:
  explicit Gen(uint64_t Seed)
      : R(Seed * 0x9e3779b97f4a7c15ull + 1),
        PropHeavy(R.nextBelow(100) < 35) {}

  FuzzProgram run();

private:
  RNG R;
  /// Property-heavy mode (seed-derived): biases generation toward the
  /// shape/IC surface — object-literal reads and writes, conditional
  /// property adds, and method calls through shared objects.
  const bool PropHeavy;
  FuzzProgram P;

  struct FnInfo {
    std::string Name;
    unsigned Arity = 0;
    bool HigherOrder = false;    ///< First param is called as a function.
    bool ReturnsClosure = false; ///< Returns `function (x) { ... }`.
    /// Estimated dynamic cost of one call, in abstract "operations"
    /// (statements weighted by the trip counts of their enclosing
    /// loops, plus the transitive cost of every call site). Used to
    /// keep calls out of contexts where the loop multiplier would blow
    /// the program's total work budget: boundedness of *values* is
    /// handled by numCoerce(), boundedness of *time* is handled here.
    uint64_t Cost = 1;
  };
  std::vector<FnInfo> Fns;

  /// Running cost of the function body currently being generated;
  /// becomes FnInfo::Cost when the body is done.
  uint64_t CurCost = 0;

  /// Ceiling on `Cost(callee) * loop-weight` for any one call site.
  /// Nested loops reach weights of ~500, so deep in a loop only
  /// near-trivial callees qualify; at top level any function does.
  /// Driver loops multiply each function by at most ~50 calls, so the
  /// whole program stays within a few million abstract operations.
  static constexpr uint64_t CallBudget = 20000;

  // --- dice ---
  bool chance(unsigned Percent) { return R.nextBelow(100) < Percent; }
  uint64_t below(uint64_t N) { return R.nextBelow(N); }
  const char *pick(const std::vector<const char *> &V) {
    return V[below(V.size())];
  }

  // --- literal pools ---
  std::string intLit() {
    static const char *Pool[] = {
        "0",  "1",  "2",          "3",          "5",         "7",
        "10", "13", "100",        "255",        "1000",      "65535",
        "(-1)",     "(-2)",       "(-7)",       "(-100)",
        "46340",    "46341",      "1000000",    "1073741824",
        "2147483646", "2147483647", "(-2147483647)",
        "(0 - 2147483647 - 1)", // INT32_MIN without a double literal.
    };
    return Pool[below(std::size(Pool))];
  }
  std::string dblLit() {
    static const char *Pool[] = {
        "0.5",  "(-0.5)", "1.5",   "3.25",       "0.125",
        "0.1",  "2.75",   "(-1.5)", "123456789.5", "2147483648.5",
    };
    return Pool[below(std::size(Pool))];
  }
  std::string strLit() {
    static const char *Pool[] = {"'fox'", "'quick brown'", "'a'",
                                 "''",    "'42'",          "'wx7'"};
    return Pool[below(std::size(Pool))];
  }
  std::string specialLit() {
    static const char *Pool[] = {"NaN",  "Infinity", "(-Infinity)", "true",
                                 "false", "null",    "undefined"};
    return Pool[below(std::size(Pool))];
  }

  /// Wraps \p E so the result is always a number (strings/undefined
  /// coerce to NaN or an integer). Applied to every value stored into a
  /// location that persists across calls (globals, array elements) and
  /// to `+`-accumulators in loops: it is what makes generated programs
  /// bounded — a string can never grow through repeated execution.
  std::string numCoerce(const std::string &E) {
    switch (below(5)) {
    case 0:
      return "(" + E + " % 1000000007)";
    case 1:
      return "(" + E + " | 0)";
    case 2:
      return "(0 - " + E + ")";
    case 3:
      return "(" + E + " * 1)";
    default:
      return "Math.floor(" + E + ")"; // floor(-0.5) is a -0 source.
    }
  }

  static bool isGlobalName(const std::string &N) {
    return N == "g0" || N == "g1";
  }

  // --- expressions ---

  /// Variables visible in the current scope plus generation options.
  struct Ctx {
    std::vector<std::string> Vars;
    /// Functions with index < CalleeLimit may be called (keeps the static
    /// call graph a DAG, so recursion depth is bounded by construction).
    size_t CalleeLimit = 0;
    bool AllowCalls = false;
    /// Name of the enclosing loop's induction variable, if any.
    std::string LoopVar;
    /// Product of the trip counts of the enclosing loops: how many
    /// times an expression generated in this context runs per call of
    /// the surrounding function.
    uint64_t Weight = 1;
  };

  std::string atom(const Ctx &C) {
    uint64_t D = below(100);
    if (D < 45 && !C.Vars.empty())
      return C.Vars[below(C.Vars.size())];
    if (D < 50 && !C.LoopVar.empty())
      return C.LoopVar;
    if (D < 75)
      return intLit();
    if (D < 85)
      return dblLit();
    if (D < 93)
      return strLit();
    return specialLit();
  }

  /// An index expression: mostly small and in range, sometimes negative
  /// or far out of range, sometimes derived from a loop variable.
  std::string idxExpr(const Ctx &C) {
    uint64_t D = below(100);
    if (D < 35)
      return std::to_string(below(8));
    if (D < 50 && !C.LoopVar.empty())
      return "(" + C.LoopVar + " % 9)";
    if (D < 62 && !C.Vars.empty())
      return "(" + C.Vars[below(C.Vars.size())] + " & 7)";
    if (D < 75)
      return "(-" + std::to_string(1 + below(3)) + ")";
    if (D < 88)
      return std::to_string(9 + below(91));
    return "1000";
  }

  std::string expr(const Ctx &C, unsigned Depth) {
    if (Depth == 0)
      return atom(C);
    uint64_t D = below(100);
    if (D < 30) {
      const char *Op = pick({"+", "-", "*", "/", "%"});
      return "(" + expr(C, Depth - 1) + " " + Op + " " + expr(C, Depth - 1) +
             ")";
    }
    if (D < 42) {
      const char *Op = pick({"&", "|", "^", "<<", ">>", ">>>"});
      return "(" + expr(C, Depth - 1) + " " + Op + " " + expr(C, Depth - 1) +
             ")";
    }
    if (D < 52) {
      const char *Op = pick({"<", "<=", ">", ">=", "==", "!="});
      return "(" + expr(C, Depth - 1) + " " + Op + " " + expr(C, Depth - 1) +
             ")";
    }
    if (D < 58) {
      const char *Op = pick({"&&", "||"});
      return "(" + expr(C, Depth - 1) + " " + Op + " " + expr(C, Depth - 1) +
             ")";
    }
    if (D < 62)
      return "(" + expr(C, Depth - 1) + " ? " + expr(C, Depth - 1) + " : " +
             expr(C, Depth - 1) + ")";
    if (D < 68) {
      const char *Op = pick({"-", "!", "typeof "});
      return "(" + std::string(Op) + expr(C, Depth - 1) + ")";
    }
    if (D < 76 && C.AllowCalls && C.CalleeLimit > 0)
      return callExpr(C, Depth);
    if (D < 86)
      return chance(PropHeavy ? 45 : 15) ? propExpr() : memoryExpr(C);
    if (D < 92)
      return mathExpr(C, Depth);
    return atom(C);
  }

  // --- property surface ---
  // Four shared objects: two literals with seed-varying key orders
  // (distinct insertion orders make distinct shapes from the same key
  // set) and two instances of a shared constructor with a conditional
  // property add (one shape per branch). Reads of keys an object lacks
  // yield undefined — NaN under the numeric coercions, still bounded.
  std::string propName() { return pick({"pa", "pb", "pc", "pd"}); }
  std::string propObj() { return pick({"go0", "go1", "gp0", "gp1"}); }
  std::string propExpr() { return propObj() + "." + propName(); }

  /// \returns an object literal over a seed-shuffled key subset.
  std::string objLit() {
    static const char *Keys[] = {"pa", "pb", "pc", "pd"};
    std::vector<const char *> Order(std::begin(Keys), std::end(Keys));
    for (size_t I = Order.size(); I > 1; --I)
      std::swap(Order[I - 1], Order[below(I)]);
    unsigned N = 1 + below(Order.size());
    std::string Out = "{";
    for (unsigned I = 0; I < N; ++I) {
      if (I)
        Out += ", ";
      Out += std::string(Order[I]) + ": " + intLit();
    }
    return Out + "}";
  }

  /// Reads through the shared globals: array loads (often out of range),
  /// string charCodeAt, lengths.
  std::string memoryExpr(const Ctx &C) {
    switch (below(5)) {
    case 0:
      return "ga[" + idxExpr(C) + "]";
    case 1:
      return "gs.charCodeAt(" + idxExpr(C) + ")";
    case 2:
      return "ga.length";
    case 3:
      return "gs.length";
    default:
      return "String.fromCharCode((" + atom(C) + " & 255))";
    }
  }

  std::string mathExpr(const Ctx &C, unsigned Depth) {
    const char *Fn = pick({"abs", "floor", "sqrt", "round"});
    if (chance(25))
      return std::string("Math.") + pick({"min", "max"}) + "(" +
             expr(C, Depth - 1) + ", " + expr(C, Depth - 1) + ")";
    return std::string("Math.") + Fn + "(" + expr(C, Depth - 1) + ")";
  }

  /// A call to an already-defined function (DAG discipline). Higher-order
  /// callees are skipped: only the driver passes function values into
  /// parameters, so a body-level call would hand them a non-callable.
  /// Callees whose cost times this context's loop weight would exceed
  /// CallBudget are skipped too — a call nested inside nested loops of
  /// a function that is itself called from loops multiplies trip
  /// counts, and without the budget a chain of loop-bearing callees
  /// amplifies into billions of operations (and as many prints).
  std::string callExpr(const Ctx &C, unsigned Depth) {
    std::vector<size_t> Candidates;
    for (size_t I = 0; I < C.CalleeLimit; ++I)
      if (!Fns[I].HigherOrder && Fns[I].Cost * C.Weight <= CallBudget)
        Candidates.push_back(I);
    if (Candidates.empty())
      return atom(C);
    const FnInfo &F = Fns[Candidates[below(Candidates.size())]];
    CurCost += F.Cost * C.Weight;
    std::string Out = F.Name + "(";
    for (unsigned I = 0; I < F.Arity; ++I) {
      if (I)
        Out += ", ";
      Out += expr(C, Depth > 0 ? 1 : 0);
    }
    return Out + ")";
  }

  // --- statements ---

  std::string assignTarget(Ctx &C) {
    assert(!C.Vars.empty());
    return C.Vars[below(C.Vars.size())];
  }

  void genFunctionBody(FuzzProgram::Unit &U, FnInfo &F, size_t FnIndex);
  void genLoopStmt(FuzzProgram::Unit &U, Ctx &C, unsigned &LoopSeq,
                   bool AllowNested);
  void genSimpleStmt(FuzzProgram::Unit &U, Ctx &C, unsigned &LocalSeq);
  void genDriver();
  void genGlobals();
  void genOsrLoop();
};

void Gen::genSimpleStmt(FuzzProgram::Unit &U, Ctx &C, unsigned &LocalSeq) {
  CurCost += C.Weight;
  uint64_t D = below(100);
  if (D < 30 || C.Vars.empty()) {
    std::string V = "v" + std::to_string(LocalSeq++);
    U.Stmts.push_back("  var " + V + " = " + expr(C, 2) + ";");
    C.Vars.push_back(V);
    return;
  }
  if (D < 55) {
    std::string T = assignTarget(C);
    std::string E = expr(C, 2);
    if (isGlobalName(T))
      E = numCoerce(E); // Globals stay numeric: see numCoerce().
    U.Stmts.push_back("  " + T + " = " + E + ";");
    return;
  }
  if (D < 75) {
    std::string T = assignTarget(C);
    const char *Op = pick({"+", "-", "*", "&", "^"});
    std::string E = "(" + T + " " + Op + " " + expr(C, 1) + ")";
    if (isGlobalName(T))
      E = numCoerce(E);
    U.Stmts.push_back("  " + T + " = " + E + ";");
    return;
  }
  if (D < 88) {
    std::string T = assignTarget(C);
    std::string A = expr(C, 1), B = expr(C, 1);
    if (isGlobalName(T)) {
      A = numCoerce(A);
      B = numCoerce(B);
    }
    U.Stmts.push_back("  if (" + expr(C, 1) + ") { " + T + " = " + A +
                      "; } else { " + T + " = " + B + "; }");
    return;
  }
  if (D < (PropHeavy ? 95u : 91u)) {
    // Property write — sometimes conditional, so the add transitions the
    // shape on one path only. Stored values stay numeric: the shared
    // objects persist across calls (same discipline as the globals).
    std::string W = propObj() + "." + propName() + " = " +
                    numCoerce(expr(C, 1)) + ";";
    if (chance(30))
      U.Stmts.push_back("  if (" + expr(C, 1) + ") { " + W + " }");
    else
      U.Stmts.push_back("  " + W);
    return;
  }
  // Array elements persist across calls: store a number or a short
  // literal, never a composite string that a later read could re-grow.
  std::string Stored = chance(25) ? (chance(50) ? strLit() : specialLit())
                                  : numCoerce(expr(C, 1));
  U.Stmts.push_back("  ga[" + idxExpr(C) + "] = " + Stored + ";");
}

void Gen::genLoopStmt(FuzzProgram::Unit &U, Ctx &C, unsigned &LoopSeq,
                      bool AllowNested) {
  static const unsigned Bounds[] = {7, 11, 23, 60, 150};
  unsigned Bound = Bounds[below(std::size(Bounds))];
  std::string I = "i" + std::to_string(LoopSeq++);
  Ctx Inner = C;
  Inner.LoopVar = I;
  Inner.Weight = C.Weight * Bound;
  std::string T = assignTarget(C);
  // `+` is the one operator whose result can be a string, so a
  // `T = (T + e)` accumulator must not run unbounded: either reduce it
  // with % (still diverges on any single wrong addition) or keep the raw
  // sum, which is safe for numbers and bounded for locals (fresh every
  // call) but not for globals.
  auto Accum = [&](const std::string &Tgt, const char *Op,
                   const std::string &E) {
    std::string Sum = "(" + Tgt + " " + Op + " " + E + ")";
    // An addend that itself mentions the accumulator doubles it every
    // iteration — `b = (b + (b + v))` over 150 iterations is 2^150,
    // which for a string-typed target is a 2^150-character string —
    // so self-referencing sums are always reduced.
    if (*Op == '+' && (isGlobalName(Tgt) ||
                       E.find(Tgt) != std::string::npos || chance(60)))
      return Tgt + " = (" + Sum + " % 1000000007);";
    return Tgt + " = " + Sum + ";";
  };
  if (AllowNested && chance(20)) {
    std::string J = "i" + std::to_string(LoopSeq++);
    unsigned BOuter = 1 + below(24), BInner = 1 + below(24);
    Ctx Inner2 = Inner;
    Inner2.LoopVar = J;
    Inner2.Weight = C.Weight * BOuter * BInner;
    CurCost += Inner2.Weight;
    U.Stmts.push_back("  for (var " + I + " = 0; " + I + " < " +
                      std::to_string(BOuter) + "; " + I + "++) { for (var " +
                      J + " = 0; " + J + " < " + std::to_string(BInner) +
                      "; " + J + "++) { " + Accum(T, "+", expr(Inner2, 1)) +
                      " } }");
    return;
  }
  CurCost += Inner.Weight;
  if (chance(25)) {
    // While loop with an explicit monotone counter.
    std::string W = "w" + std::to_string(LoopSeq++);
    U.Stmts.push_back("  var " + W + " = 0;");
    Inner.LoopVar = W;
    std::string Body = Accum(T, pick({"+", "-", "^"}), expr(Inner, 1)) + " " +
                       W + " = " + W + " + 1;";
    U.Stmts.push_back("  while (" + W + " < " + std::to_string(Bound) +
                      ") { " + Body + " }");
    return;
  }
  std::string Extra;
  if (chance(30))
    Extra = " if (" + expr(Inner, 1) + ") { " + T + " = (" + T + " + 1); }";
  U.Stmts.push_back("  for (var " + I + " = 0; " + I + " < " +
                    std::to_string(Bound) + "; " + I + "++) { " +
                    Accum(T, "+", expr(Inner, 1)) + Extra + " }");
}

void Gen::genFunctionBody(FuzzProgram::Unit &U, FnInfo &F, size_t FnIndex) {
  CurCost = 1;
  Ctx C;
  C.CalleeLimit = FnIndex; // Only earlier functions are callable.
  C.AllowCalls = true;
  static const char *ParamNames[] = {"a", "b", "c"};
  for (unsigned I = 0; I < F.Arity; ++I) {
    if (I == 0 && F.HigherOrder)
      continue; // `f` is only used in call position, never as a value.
    C.Vars.push_back(ParamNames[I]);
  }
  // Globals are visible inside functions too.
  C.Vars.push_back("g0");
  C.Vars.push_back("g1");

  unsigned LocalSeq = 0, LoopSeq = 0;
  std::string Acc = "v" + std::to_string(LocalSeq++);
  U.Stmts.push_back("  var " + Acc + " = " + atom(C) + ";");
  C.Vars.push_back(Acc);

  if (F.HigherOrder)
    U.Stmts.push_back("  " + Acc + " = (" + Acc + " + f(" + expr(C, 1) +
                      "));");

  unsigned NumStmts = 2 + below(4);
  unsigned LoopsEmitted = 0;
  bool Printed = false;
  for (unsigned I = 0; I < NumStmts; ++I) {
    if (LoopsEmitted < 2 && chance(35)) {
      genLoopStmt(U, C, LoopSeq, /*AllowNested=*/LoopsEmitted == 0);
      ++LoopsEmitted;
    } else if (!Printed && chance(10)) {
      // At most one print per function: bodies run under driver loops, so
      // this keeps output size bounded while still exercising the
      // side-effect-before-bailout replay hazard.
      U.Stmts.push_back("  print(" + assignTarget(C) + ");");
      Printed = true;
    } else {
      genSimpleStmt(U, C, LocalSeq);
    }
  }

  if (F.ReturnsClosure) {
    Ctx Closure = C;
    Closure.AllowCalls = false; // Closure bodies stay call-free.
    Closure.Vars.push_back("x");
    U.Stmts.push_back("  return function (x) { return " + expr(Closure, 2) +
                      "; };");
  } else if (chance(85)) {
    U.Stmts.push_back("  return " + expr(C, 2) + ";");
  }
  F.Cost = CurCost;
}

void Gen::genGlobals() {
  FuzzProgram::Unit U;
  U.Stmts.push_back("var g0 = " + intLit() + ";");
  U.Stmts.push_back("var g1 = " + dblLit() + ";");
  std::string Arr = "var ga = [";
  unsigned N = 4 + below(5);
  for (unsigned I = 0; I < N; ++I) {
    if (I)
      Arr += ", ";
    Arr += intLit();
  }
  U.Stmts.push_back(Arr + "];");
  U.Stmts.push_back("var gs = " + strLit() + ";");
  // The shared property-surface objects (see propExpr). MkO's
  // conditional add means its instances split over two shapes depending
  // on the argument order at the `new` sites.
  U.Stmts.push_back("var go0 = " + objLit() + ";");
  U.Stmts.push_back("var go1 = " + objLit() + ";");
  P.Units.push_back(std::move(U));

  FuzzProgram::Unit Ctor;
  Ctor.Header = "function MkO(a, b) {";
  Ctor.Stmts.push_back("  this.pa = a;");
  Ctor.Stmts.push_back("  this.pb = (a - b);");
  Ctor.Stmts.push_back("  if (a > b) { this.pc = (b | 0); }");
  Ctor.Footer = "}";
  P.Units.push_back(std::move(Ctor));

  FuzzProgram::Unit Insts;
  Insts.Stmts.push_back("var gp0 = new MkO(" + intLit() + ", " + intLit() +
                        ");");
  Insts.Stmts.push_back("var gp1 = new MkO(" + intLit() + ", " + intLit() +
                        ");");
  P.Units.push_back(std::move(Insts));
}

void Gen::genOsrLoop() {
  FuzzProgram::Unit U;
  unsigned Bound = 250 + below(350);
  unsigned Mul = 3 + below(7);
  U.Stmts.push_back("var osr = 0;");
  U.Stmts.push_back("for (var z = 0; z < " + std::to_string(Bound) +
                    "; z++) { osr = ((osr + (z * " + std::to_string(Mul) +
                    ")) % 1000003); }");
  U.Stmts.push_back("print(osr);");
  P.Units.push_back(std::move(U));
}

void Gen::genDriver() {
  FuzzProgram::Unit U;
  Ctx C;
  C.CalleeLimit = Fns.size();
  C.AllowCalls = false; // Driver calls are emitted explicitly below.
  C.Vars.push_back("g0");
  C.Vars.push_back("g1");

  // Names of plain (non-higher-order, non-closure-returning) functions:
  // these are what the driver passes as function-valued arguments.
  std::vector<std::string> PlainFns;
  for (const FnInfo &F : Fns)
    if (!F.HigherOrder && !F.ReturnsClosure)
      PlainFns.push_back(F.Name);

  auto CallArgs = [&](const FnInfo &F, const std::string &Var,
                      const std::string &Callee = std::string()) {
    std::string Out = (Callee.empty() ? F.Name : Callee) + "(";
    for (unsigned I = 0; I < F.Arity; ++I) {
      if (I)
        Out += ", ";
      if (I == 0 && F.HigherOrder) {
        Out += PlainFns.empty() ? "Math.abs"
                                : PlainFns[below(PlainFns.size())];
      } else if (!Var.empty() && chance(40)) {
        Out += Var;
      } else if (chance(70)) {
        Out += intLit();
      } else {
        Out += chance(50) ? dblLit() : atom(C);
      }
    }
    return Out + ")";
  };

  for (size_t FI = 0; FI < Fns.size(); ++FI) {
    const FnInfo &F = Fns[FI];
    // Rv is deliberately NOT added to C.Vars: result variables can hold
    // strings, and feeding them back as call arguments would let string
    // lengths compound across the call loops below.
    std::string Rv = "r" + std::to_string(FI);
    U.Stmts.push_back("var " + Rv + " = 0;");
    if (F.ReturnsClosure) {
      std::string Cv = "c" + std::to_string(FI);
      U.Stmts.push_back("var " + Cv + " = " + CallArgs(F, "") + ";");
      std::string H = "h" + std::to_string(FI);
      unsigned Iters = 11 + below(15);
      U.Stmts.push_back("for (var " + H + " = 0; " + H + " < " +
                        std::to_string(Iters) + "; " + H + "++) { " + Rv +
                        " = (" + Rv + " + " + Cv + "(" +
                        (chance(50) ? H : intLit()) + ")); }");
    } else {
      // Hot same-args loop: fills the specialization cache.
      std::string H = "h" + std::to_string(FI);
      unsigned Iters = 11 + below(15);
      U.Stmts.push_back("for (var " + H + " = 0; " + H + " < " +
                        std::to_string(Iters) + "; " + H + "++) { " + Rv +
                        " = " + CallArgs(F, "") + "; }");
      if (chance(60)) {
        // Different-args loop: forces despecialization / tier demotion.
        std::string Dv = "d" + std::to_string(FI);
        unsigned DIters = 8 + below(13);
        U.Stmts.push_back("for (var " + Dv + " = 0; " + Dv + " < " +
                          std::to_string(DIters) + "; " + Dv + "++) { " + Rv +
                          " = ((" + Rv + " + " + CallArgs(F, Dv) +
                          ") % 1000000007); }");
      }
      if (chance(40))
        // Type-changing call after the int-heavy warmup.
        U.Stmts.push_back(Rv + " = " + CallArgs(F, "g1") + ";");
    }
    // Probe: `1 / v` surfaces -0 vs +0, `typeof` surfaces type confusion.
    U.Stmts.push_back("print(" + Rv + ", (1 / " + Rv + "), typeof " + Rv +
                      ");");
  }

  // Method-call sites: a plain function installed as a property of a
  // shared object and called through it in a hot loop (the CallMethod
  // IC / shape-guarded call path). A second install on another object
  // makes the site polymorphic over receivers.
  if (!PlainFns.empty() && chance(PropHeavy ? 85 : 40)) {
    size_t FI = 0;
    for (size_t I = 0; I < Fns.size(); ++I)
      if (!Fns[I].HigherOrder && !Fns[I].ReturnsClosure) {
        FI = I;
        break;
      }
    const FnInfo &F = Fns[FI];
    U.Stmts.push_back("go0.mf = " + F.Name + ";");
    bool TwoRecv = chance(50);
    if (TwoRecv)
      U.Stmts.push_back("gp0.mf = " + F.Name + ";");
    U.Stmts.push_back("var rm = 0;");
    unsigned Iters = 11 + below(15);
    std::string Recv =
        TwoRecv ? std::string("((hm & 1) ? go0 : gp0)") : std::string("go0");
    U.Stmts.push_back("for (var hm = 0; hm < " + std::to_string(Iters) +
                      "; hm++) { rm = ((rm + " +
                      CallArgs(F, "hm", Recv + ".mf") + ") % 1000000007); }");
    U.Stmts.push_back("print(rm, typeof rm);");
  }

  // Observe the shared objects' final property values (NaN-safe probes:
  // undefined reads print as undefined, not as a silent hole).
  U.Stmts.push_back("print(go0.pa, go0.pb, go0.pc, go0.pd);");
  U.Stmts.push_back("print(go1.pa, gp0.pb, gp0.pc, gp1.pc, gp1.pa);");

  U.Stmts.push_back("print(ga.length, ga[0], ga[" +
                    std::to_string(below(12)) + "], gs.length);");
  P.Units.push_back(std::move(U));
}

FuzzProgram Gen::run() {
  genGlobals();

  unsigned NumFns = 2 + below(3);
  for (unsigned I = 0; I < NumFns; ++I) {
    FnInfo F;
    F.Name = "f" + std::to_string(I);
    // Higher-order functions need at least one earlier plain function to
    // receive; keep them to later definition slots.
    F.HigherOrder = I >= 1 && chance(20);
    F.ReturnsClosure = !F.HigherOrder && chance(20);
    F.Arity = F.HigherOrder ? 2 + below(2) : 1 + below(3);
    FuzzProgram::Unit U;
    U.Header = "function " + F.Name + "(";
    static const char *ParamNames[] = {"a", "b", "c"};
    for (unsigned A = 0; A < F.Arity; ++A) {
      if (A)
        U.Header += ", ";
      U.Header += (A == 0 && F.HigherOrder) ? "f" : ParamNames[A];
    }
    U.Header += ") {";
    U.Footer = "}";
    genFunctionBody(U, F, I);
    Fns.push_back(F);
    P.Units.push_back(std::move(U));
  }

  genDriver();
  genOsrLoop();
  return P;
}

} // namespace

FuzzProgram generateProgram(uint64_t Seed) { return Gen(Seed).run(); }

} // namespace fuzz
} // namespace jitvs
