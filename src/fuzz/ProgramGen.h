//===- fuzz/ProgramGen.h - Seeded MiniJS program generator ------*- C++ -*-===//
///
/// \file
/// Deterministic random-program generator for the differential fuzzer.
/// Every program is a pure function of its 64-bit seed, terminates by
/// construction (all loops have literal bounds and monotone counters,
/// calls form a DAG over earlier-defined functions) and avoids the two
/// nondeterministic builtins (Math.random, gc). The generated surface
/// deliberately concentrates on the paper's hot spots: int32 arithmetic
/// at the overflow boundaries, doubles (including -0 and NaN probes via
/// `1 / v`), strings and arrays with out-of-range indices, closures
/// passed as parameters, `typeof`, same-args call loops that populate
/// the specialization cache, different-args calls that despecialize,
/// and long top-level loops that trigger OSR.
///
//===----------------------------------------------------------------------===//

#ifndef JITVS_FUZZ_PROGRAMGEN_H
#define JITVS_FUZZ_PROGRAMGEN_H

#include <cstdint>
#include <string>
#include <vector>

namespace jitvs {
namespace fuzz {

/// A generated program, structured for minimization: a list of units
/// (function definitions or top-level runs of statements) whose
/// individual statements are complete single lines. The minimizer
/// deletes whole units and single statements; rendering what survives
/// always yields a syntactically well-formed candidate as long as the
/// unit headers/footers are kept together.
struct FuzzProgram {
  struct Unit {
    /// "function f0(a, b) {" for function units; empty for top level.
    std::string Header;
    /// Complete single-line statements (each individually removable).
    std::vector<std::string> Stmts;
    /// "}" for function units; empty for top level.
    std::string Footer;
  };

  std::vector<Unit> Units;

  /// Renders the program as MiniJS source, one statement per line.
  std::string render() const;

  /// Total number of removable statements across all units.
  size_t statementCount() const;
};

/// Generates the program for \p Seed. Pure and deterministic: the same
/// seed always yields byte-identical source, on every platform.
FuzzProgram generateProgram(uint64_t Seed);

} // namespace fuzz
} // namespace jitvs

#endif // JITVS_FUZZ_PROGRAMGEN_H
