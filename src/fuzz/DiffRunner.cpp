//===- fuzz/DiffRunner.cpp - Differential config-matrix runner ------------===//

#include "fuzz/DiffRunner.h"

#include "telemetry/BailoutReason.h"
#include "vm/Runtime.h"

#include <cmath>
#include <memory>
#include <sstream>

namespace jitvs {
namespace fuzz {

/// Renders the completion value for diffing. Tags are not observable in
/// MiniJS, so Int32 1 and Double 1.0 must render identically — but -0
/// (reachable only as a Double) is observable through `1 / v`, so it is
/// rendered distinctly. Heap values are rendered *before* the Runtime
/// (and its GC) is torn down.
static std::string renderCompletion(const Value &V) {
  if (V.isDouble() && V.asDouble() == 0.0 && std::signbit(V.asDouble()))
    return "-0";
  return V.toDisplayString();
}

std::vector<EngineSetup> defaultMatrix() {
  EngineKnobs Hot; // Aggressive thresholds: make tiny programs compile.
  Hot.CallThreshold = 3;
  Hot.LoopThreshold = 20;

  std::vector<EngineSetup> M;

  EngineSetup Interp;
  Interp.Name = "interp";
  Interp.UseJit = false;
  M.push_back(Interp);

  auto Add = [&](const char *Name, OptConfig Opt, auto Tweak) {
    EngineSetup S;
    S.Name = Name;
    S.Opt = Opt;
    S.Knobs = Hot;
    Tweak(S.Knobs);
    M.push_back(std::move(S));
  };

  OptConfig All = OptConfig::all();
  OptConfig AllOce = All;
  AllOce.OverflowCheckElim = true;

  Add("paper-all", All, [](EngineKnobs &) {});
  Add("paper-baseline", OptConfig::baseline(), [](EngineKnobs &) {});
  Add("tiered-all", All,
      [](EngineKnobs &K) { K.Policy = TierPolicy::Tiered; });
  Add("paper-nofusion", All, [](EngineKnobs &K) { K.Fusion = false; });
  Add("paper-switch", All,
      [](EngineKnobs &K) { K.Dispatch = DispatchMode::Switch; });
  Add("tiered-switch-nofusion", All, [](EngineKnobs &K) {
    K.Policy = TierPolicy::Tiered;
    K.Fusion = false;
    K.Dispatch = DispatchMode::Switch;
  });
  Add("paper-oce", AllOce, [](EngineKnobs &) {});
  // Shapes/ICs off: property ops stay generic in both tiers. Diffing
  // this against the shape-specialized columns catches wrong-slot loads,
  // missed transitions and bad guard sets as observable divergence.
  Add("paper-noshapes", All, [](EngineKnobs &) {});
  M.back().ShapesOff = true;
  Add("tiered-cache2", All, [](EngineKnobs &K) {
    K.Policy = TierPolicy::Tiered;
    K.CacheDepth = 2;
    K.ValueStabilityMax = 2;
  });
  // Background compilation columns (vs the synchronous CompileThreads=0
  // of every column above). Free-running: compiles land whenever the
  // workers finish, so install timing varies run to run — observable
  // behavior must not. Drained: block after each enqueue so compiles
  // land at the same trigger points as the synchronous pipeline while
  // still crossing the publication machinery — deterministic, and keyed
  // to a different tier policy to widen coverage.
  Add("paper-all-threads2", All,
      [](EngineKnobs &K) { K.CompileThreads = 2; });
  Add("tiered-threads2-drain", All, [](EngineKnobs &K) {
    K.Policy = TierPolicy::Tiered;
    K.CompileThreads = 2;
    K.CompileDrain = true;
  });
  // Shared code cache columns. The synchronous one runs the cache as
  // the sole specialized-entry dispatch; the drained-background one
  // crosses cache inserts with the install path. Both use a budget tiny
  // enough that real programs evict constantly, so every seed exercises
  // the eviction + reclaimer-retire interleavings.
  Add("paper-cache4k", All,
      [](EngineKnobs &K) { K.CodeCacheBytes = 4096; });
  Add("tiered-cache4k-threads2-drain", All, [](EngineKnobs &K) {
    K.Policy = TierPolicy::Tiered;
    K.CodeCacheBytes = 4096;
    K.CompileThreads = 2;
    K.CompileDrain = true;
  });
  // GC-stress columns: a moving minor collection at *every* allocation
  // safepoint. The synchronous column catches values the interpreter and
  // native tier fail to root across allocating ops; the drained
  // background column additionally crosses collections with the
  // enqueue-time tenuring of compile-task snapshots — the interleaving
  // that finds stale raw callee/environment pointers in the engine.
  Add("paper-all-gcstress", All, [](EngineKnobs &) {});
  M.back().GCStress = true;
  Add("tiered-threads2-drain-gcstress", All, [](EngineKnobs &K) {
    K.Policy = TierPolicy::Tiered;
    K.CompileThreads = 2;
    K.CompileDrain = true;
  });
  M.back().GCStress = true;

  return M;
}

RunOutcome runOnce(const std::string &Source, const EngineSetup &Setup) {
  RunOutcome Out;
  Runtime RT;
  RT.setShapesEnabled(!Setup.ShapesOff);
  if (Setup.GCStress)
    RT.heap().setGCStress(true);
  std::unique_ptr<Engine> E;
  if (Setup.UseJit)
    E = std::make_unique<Engine>(RT, Setup.Opt, Setup.Knobs);
  Value V = RT.evaluate(Source);
  Out.Completion = renderCompletion(V);
  Out.Output = RT.output();
  Out.HadError = RT.hasError();
  if (Out.HadError)
    Out.Error = RT.errorMessage();
  if (E)
    Out.Stats = E->stats();
  return Out;
}

DiffResult runMatrix(const std::string &Source,
                     const std::vector<EngineSetup> &Matrix) {
  DiffResult Result;
  const EngineSetup *Ref = nullptr;
  RunOutcome RefOut;
  for (const EngineSetup &S : Matrix) {
    if (!S.UseJit) {
      Ref = &S;
      RefOut = runOnce(Source, S);
      break;
    }
  }
  if (!Ref) {
    EngineSetup Implied;
    Implied.Name = "interp";
    Implied.UseJit = false;
    RefOut = runOnce(Source, Implied);
  }
  for (const EngineSetup &S : Matrix) {
    if (&S == Ref)
      continue;
    RunOutcome Got = runOnce(Source, S);
    if (!Got.sameObservable(RefOut))
      Result.Divergences.push_back({S.Name, RefOut, std::move(Got)});
  }
  return Result;
}

static void describeOutcome(std::ostream &OS, const char *Label,
                            const RunOutcome &O) {
  OS << Label << ":\n";
  OS << "  completion: " << O.Completion << "\n";
  OS << "  error: " << (O.HadError ? O.Error : "<none>") << "\n";
  OS << "  output (" << O.Output.size() << " bytes):\n";
  std::istringstream Lines(O.Output);
  std::string Line;
  while (std::getline(Lines, Line))
    OS << "    | " << Line << "\n";
}

std::string describeDivergence(const Divergence &D, uint64_t Seed,
                               const std::string &Source) {
  std::ostringstream OS;
  OS << "=== DIVERGENCE seed=" << Seed << " config=" << D.ConfigName
     << " ===\n";
  describeOutcome(OS, "reference (interp)", D.Reference);
  describeOutcome(OS, D.ConfigName.c_str(), D.Actual);
  const EngineStats &S = D.Actual.Stats;
  OS << "telemetry: compiles=" << S.Compilations
     << " specialized=" << S.SpecializedCompiles
     << " generic=" << S.GenericCompiles
     << " despecializations=" << S.Despecializations
     << " cache-hits=" << S.CacheHits << " (value=" << S.ValueTierHits
     << " type=" << S.TypeTierHits << ")"
     << " tier-demotions=" << S.TierDemotionsValueToType << "/"
     << S.TierDemotionsToGeneric << " osr=" << S.OsrEntries
     << " fused=" << S.FusedOps << "\n";
  OS << "bailouts: total=" << S.Bailouts;
  for (size_t I = 0; I < NumBailoutReasons; ++I)
    if (S.BailoutsByReason[I])
      OS << " " << bailoutReasonName(static_cast<BailoutReason>(I)) << "="
         << S.BailoutsByReason[I];
  OS << "\n";
  OS << "minimized reproducer:\n" << Source;
  if (!Source.empty() && Source.back() != '\n')
    OS << "\n";
  OS << "repro: jitvs_fuzz --seed " << Seed << " --minimize\n";
  return OS.str();
}

} // namespace fuzz
} // namespace jitvs
