//===- fuzz/Minimizer.cpp - Greedy test-case minimizer --------------------===//

#include "fuzz/Minimizer.h"

namespace jitvs {
namespace fuzz {

FuzzProgram minimize(const FuzzProgram &P, const Oracle &StillFails,
                     size_t MaxOracleCalls) {
  FuzzProgram Cur = P;
  size_t Calls = 0;
  auto Try = [&](const FuzzProgram &Candidate) {
    if (Calls >= MaxOracleCalls)
      return false;
    ++Calls;
    return StillFails(Candidate.render());
  };

  bool Changed = true;
  while (Changed && Calls < MaxOracleCalls) {
    Changed = false;

    // Pass 1: drop whole units, last-defined first (later units tend to
    // depend on earlier ones, so this order removes dependents first).
    for (size_t I = Cur.Units.size(); I-- > 0;) {
      if (Cur.Units.size() == 1)
        break;
      FuzzProgram Candidate = Cur;
      Candidate.Units.erase(Candidate.Units.begin() + I);
      if (Try(Candidate)) {
        Cur = std::move(Candidate);
        Changed = true;
      }
    }

    // Pass 2: drop single statements, last first within each unit.
    for (size_t U = Cur.Units.size(); U-- > 0;) {
      for (size_t S = Cur.Units[U].Stmts.size(); S-- > 0;) {
        FuzzProgram Candidate = Cur;
        Candidate.Units[U].Stmts.erase(Candidate.Units[U].Stmts.begin() + S);
        if (Try(Candidate)) {
          Cur = std::move(Candidate);
          Changed = true;
        }
      }
    }
  }
  return Cur;
}

} // namespace fuzz
} // namespace jitvs
